#include "core/mmu.hh"

#include "base/logging.hh"
#include "check/fault_injector.hh"
#include "energy/coefficients.hh"
#include "obs/metrics.hh"
#include "obs/provenance.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace eat::core
{

namespace
{

using energy::StructClass;

/** Coefficients for every power-of-two downsizing of a page TLB. */
std::vector<energy::EnergyCoefficients>
resizableCoeffs(const energy::CactiLite &cacti, StructClass cls,
                const TlbGeom &geom)
{
    const unsigned sets = geom.entries / geom.ways;
    std::vector<energy::EnergyCoefficients> out(floorLog2(geom.ways) + 1);
    for (unsigned lw = 0; lw < out.size(); ++lw) {
        const unsigned ways = 1u << lw;
        out[lw] = cacti.estimate(cls, sets * ways, ways);
    }
    return out;
}

std::vector<energy::EnergyCoefficients>
fixedCoeff(const energy::CactiLite &cacti, StructClass cls, unsigned entries,
           unsigned ways)
{
    return {cacti.estimate(cls, entries, ways)};
}

} // namespace

unsigned
Mmu::logWaysOf(const tlb::SetAssocTlb &t)
{
    // The TLB maintains this value across resizes; recomputing the
    // log on every energy charge was measurable on the access path.
    return t.logActiveWays();
}

Mmu::Mmu(const MmuConfig &config, const vm::PageTable &pageTable,
         const vm::RangeTable *rangeTable)
    : cfg_(config),
      pageTable_(&pageTable),
      rangeTable_(rangeTable),
      mmuCache_(config.mmuCache),
      walker_(pageTable, mmuCache_)
{
    eat_check_fatal(cfg_.validate());

    // --- build the structures ---
    if (cfg_.combinedFullyAssocL1) {
        // §4.4: one fully associative L1 holds every page size; a
        // fully associative structure matches mixed sizes natively.
        l1Page4K_ = std::make_unique<tlb::SetAssocTlb>(
            "L1-combined TLB", cfg_.combinedL1Entries,
            cfg_.combinedL1Entries, 12);
    } else {
        l1Page4K_ = std::make_unique<tlb::SetAssocTlb>(
            cfg_.mixedTlbs ? "L1-mixed TLB" : "L1-4KB TLB",
            cfg_.l1Tlb4K.entries, cfg_.l1Tlb4K.ways, 12);
    }
    l2Page_ = std::make_unique<tlb::SetAssocTlb>(
        cfg_.mixedTlbs ? "L2-mixed TLB" : "L2-4KB TLB", cfg_.l2Tlb.entries,
        cfg_.l2Tlb.ways, 12);

    if (!cfg_.mixedTlbs && !cfg_.combinedFullyAssocL1) {
        l1Page2M_ = std::make_unique<tlb::SetAssocTlb>(
            "L1-2MB TLB", cfg_.l1Tlb2M.entries, cfg_.l1Tlb2M.ways, 21);
        l1Page1G_ = std::make_unique<tlb::FullyAssocTlb>(
            "L1-1GB TLB", cfg_.l1Tlb1GEntries, 30);
    }

    if (cfg_.hasL1Range)
        l1Range_ = std::make_unique<tlb::RangeTlb>("L1-range TLB",
                                                   cfg_.l1RangeEntries);
    if (cfg_.hasL2Range)
        l2Range_ = std::make_unique<tlb::RangeTlb>("L2-range TLB",
                                                   cfg_.l2RangeEntries);
    if (cfg_.hasL1Range || cfg_.hasL2Range) {
        eat_assert(rangeTable_ != nullptr,
                   "range TLBs require a range table");
        rangeWalker_ = std::make_unique<tlb::RangeTableWalker>(*rangeTable_);
    }

    if (cfg_.liteEnabled) {
        std::vector<tlb::SetAssocTlb *> monitored{l1Page4K_.get()};
        if (l1Page2M_)
            monitored.push_back(l1Page2M_.get());
        if (l1Page1G_)
            monitored.push_back(l1Page1G_.get());
        lite_ = std::make_unique<lite::LiteController>(cfg_.lite,
                                                       std::move(monitored));
    }

    // --- energy coefficients ---
    if (cfg_.combinedFullyAssocL1) {
        m4K_.coeffByLogWays = resizableCoeffs(
            cacti_, StructClass::L1TlbMixedFA,
            TlbGeom{cfg_.combinedL1Entries, cfg_.combinedL1Entries});
    } else {
        m4K_.coeffByLogWays =
            resizableCoeffs(cacti_, StructClass::L1Tlb4K, cfg_.l1Tlb4K);
    }
    mL2_.coeffByLogWays =
        fixedCoeff(cacti_, StructClass::L2Tlb4K, cfg_.l2Tlb.entries,
                   cfg_.l2Tlb.ways);
    if (l1Page2M_) {
        m2M_.coeffByLogWays =
            resizableCoeffs(cacti_, StructClass::L1Tlb2M, cfg_.l1Tlb2M);
        m1G_.coeffByLogWays = resizableCoeffs(
            cacti_, StructClass::L1Tlb1G,
            TlbGeom{cfg_.l1Tlb1GEntries, cfg_.l1Tlb1GEntries});
    }
    if (l1Range_) {
        mL1Range_.coeffByLogWays = fixedCoeff(
            cacti_, StructClass::L1RangeTlb, cfg_.l1RangeEntries, 0);
    }
    if (l2Range_) {
        mL2Range_.coeffByLogWays = fixedCoeff(
            cacti_, StructClass::L2RangeTlb, cfg_.l2RangeEntries, 0);
    }
    mPde_.coeffByLogWays =
        fixedCoeff(cacti_, StructClass::MmuPde, cfg_.mmuCache.pdeEntries,
                   cfg_.mmuCache.pdeWays);
    mPdpte_.coeffByLogWays = fixedCoeff(
        cacti_, StructClass::MmuPdpte, cfg_.mmuCache.pdpteEntries, 0);
    mPml4_.coeffByLogWays =
        fixedCoeff(cacti_, StructClass::MmuPml4, cfg_.mmuCache.pml4Entries, 0);

    // Page-walk references: a blend of L1 and L2 data-cache reads
    // controlled by the Figure-3 locality knob.
    const auto l1c = cacti_.estimate(StructClass::L1Cache, 512, 8);
    const double h = cfg_.walkL1CacheHitRatio;
    eat_assert(h >= 0.0 && h <= 1.0, "walkL1CacheHitRatio out of [0,1]");
    walkRefEnergy_ = h * l1c.read + (1.0 - h) * cacti_.l2CacheReadEnergy();

    stats_.l1WayLookups4K.ensureBuckets(floorLog2(cfg_.l1Tlb4K.ways) + 1);
    if (l1Page2M_)
        stats_.l1WayLookups2M.ensureBuckets(floorLog2(cfg_.l1Tlb2M.ways) + 1);

    // Provenance identities (must match the dynamicEnergyTotal() order
    // documented on obs::ProvStruct).
    m4K_.id = obs::ProvStruct::L1Tlb4K;
    m2M_.id = obs::ProvStruct::L1Tlb2M;
    m1G_.id = obs::ProvStruct::L1Tlb1G;
    mL2_.id = obs::ProvStruct::L2Tlb;
    mL1Range_.id = obs::ProvStruct::L1Range;
    mL2Range_.id = obs::ProvStruct::L2Range;
    mPde_.id = obs::ProvStruct::PwcPde;
    mPdpte_.id = obs::ProvStruct::PwcPdpte;
    mPml4_.id = obs::ProvStruct::PwcPml4;
}

void
Mmu::chargeRead(Metered &m, unsigned logWays, bool hit)
{
    eat_assert(logWays < m.coeffByLogWays.size(), "bad coefficient index");
    const PicoJoules pj = m.coeffByLogWays[logWays].read;
    m.meter.chargeRead(pj);
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({stats_.instructions, 0, pj, obs::ProvKind::Probe,
                     m.id, coreId_, asid_, 0, hit, 1u << logWays, 0});
    }
}

void
Mmu::chargeWrite(Metered &m, unsigned logWays, unsigned psShift)
{
    eat_assert(logWays < m.coeffByLogWays.size(), "bad coefficient index");
    const PicoJoules pj = m.coeffByLogWays[logWays].write;
    m.meter.chargeWrite(pj);
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({stats_.instructions, 0, pj, obs::ProvKind::Fill, m.id,
                     coreId_, asid_, static_cast<std::uint8_t>(psShift),
                     false, 1u << logWays, 0});
    }
}

void
Mmu::chargeWalkMemory(unsigned refs, bool rangeWalk, unsigned leafLevel)
{
    auto &meter = rangeWalk ? rangeWalkMemMeter_ : walkMemMeter_;
    // One event per reference, not refs * energy: repeated addition of
    // a double is not the same as multiplication, and the provenance
    // totals must stay bit-identical to the meter.
    for (unsigned i = 0; i < refs; ++i) {
        meter.chargeRead(walkRefEnergy_);
        if (EAT_PROV_ENABLED && prov_) {
            // The walk fetches top-down; reference i touches level
            // leafLevel + refs - 1 - i (range walks report level 0).
            const unsigned level =
                rangeWalk ? 0 : leafLevel + refs - 1 - i;
            prov_->emit({stats_.instructions, 0, walkRefEnergy_,
                         obs::ProvKind::WalkRef,
                         rangeWalk ? obs::ProvStruct::RangeWalkMem
                                   : obs::ProvStruct::WalkMem,
                         coreId_, asid_, 0, false, level, 0});
        }
    }
}

void
Mmu::provEvict(const Metered &m, bool evicted)
{
    if (EAT_PROV_ENABLED && prov_ && evicted) {
        prov_->emit({stats_.instructions, 0, 0.0, obs::ProvKind::Evict,
                     m.id, coreId_, asid_, 0, false, 0, 0});
    }
}

void
Mmu::provEnd(std::string_view source, unsigned psShift, bool l1Hit)
{
    if (EAT_PROV_ENABLED && prov_) {
        prov_->endTranslation(source, static_cast<std::uint8_t>(psShift),
                              l1Hit);
    }
}

vm::PageSize
Mmu::predictPageSize(Addr vaddr) const
{
    // TLB_PP's predictor is perfect and free (paper §5): consult the
    // page table directly without charging energy.
    auto t = pageTable_->translate(vaddr);
    if (!t)
        eat_panic("TLB_PP oracle consulted for unmapped address ", vaddr);
    return t->size;
}

void
Mmu::fillL1Page(const tlb::TlbEntry &entry)
{
    if (cfg_.mixedTlbs || cfg_.combinedFullyAssocL1) {
        chargeWrite(m4K_, logWaysOf(*l1Page4K_), entry.shift);
        provEvict(m4K_, l1Page4K_->fill(entry));
        return;
    }
    switch (entry.size) {
      case vm::PageSize::Size4K:
        chargeWrite(m4K_, logWaysOf(*l1Page4K_), entry.shift);
        provEvict(m4K_, l1Page4K_->fill(entry));
        break;
      case vm::PageSize::Size2M:
        enabled2M_ = true; // naive static mask lifts on first 2 MB fill
        chargeWrite(m2M_, logWaysOf(*l1Page2M_), entry.shift);
        provEvict(m2M_, l1Page2M_->fill(entry));
        break;
      case vm::PageSize::Size1G:
        enabled1G_ = true;
        chargeWrite(m1G_, logWaysOf(*l1Page1G_), entry.shift);
        provEvict(m1G_, l1Page1G_->fill(entry));
        break;
    }
}

void
Mmu::access(Addr vaddr)
{
    ++stats_.memOps;
    if (EAT_PROV_ENABLED && prov_)
        prov_->beginTranslation(stats_.instructions, coreId_, asid_, vaddr);

    // ------------------------------------------------------------------
    // L1: all enabled structures searched in parallel.
    // ------------------------------------------------------------------
    // Lookups run before their energy charge throughout: the charged
    // coefficient never depends on the outcome, and the provenance
    // probe event wants the hit flag.
    bool rangeHit = false;
    std::optional<vm::RangeTranslation> l1r;
    if (l1Range_ && enabledL1Range_) {
        l1r = l1Range_->lookup(vaddr, asid_);
        chargeRead(mL1Range_, 0, l1r.has_value());
        if (l1r)
            rangeHit = true;
    }

    bool pageHit = false;
    HitSource pageSource = HitSource::L1Page4K;
    tlb::TlbEntry hitEntry{};

    if (cfg_.mixedTlbs) {
        const vm::PageSize predicted = predictPageSize(vaddr);
        const unsigned lw4K = logWaysOf(*l1Page4K_);
        auto res = l1Page4K_->lookupWithShift(
            vaddr, vm::pageShift(predicted), asid_);
        chargeRead(m4K_, lw4K, res.hit);
        stats_.l1WayLookups4K.record(lw4K);
        if (res.hit) {
            pageHit = true;
            pageSource = HitSource::L1Page4K;
            hitEntry = res.entry;
        }
    } else if (cfg_.combinedFullyAssocL1) {
        // One fully associative lookup serves every page size; Lite
        // clusters its LRU distances as pseudo-ways (§4.4).
        const unsigned lw4K = logWaysOf(*l1Page4K_);
        auto res = l1Page4K_->lookup(vaddr, asid_);
        chargeRead(m4K_, lw4K, res.hit);
        stats_.l1WayLookups4K.record(lw4K);
        if (res.hit) {
            pageHit = true;
            pageSource = HitSource::L1Page4K;
            hitEntry = res.entry;
            if (lite_)
                lite_->onTlbHit(0, res.lruDistance, true);
        }
    } else if (rangeHit) {
        // The range translation provides this lookup; the parallel
        // page-TLB probes still burn lookup energy, but the entries are
        // not *used*, so their recency state is not refreshed (and Lite
        // records no utility). Without this, range-covered entries
        // would pin themselves at the MRU end forever and mask the
        // utility signal of the traffic only the page TLBs serve.
        const unsigned lw4K = logWaysOf(*l1Page4K_);
        chargeRead(m4K_, lw4K);
        stats_.l1WayLookups4K.record(lw4K);
        if (enabled2M_) {
            const unsigned lw2M = logWaysOf(*l1Page2M_);
            chargeRead(m2M_, lw2M);
            stats_.l1WayLookups2M.record(lw2M);
        }
        if (enabled1G_)
            chargeRead(m1G_, logWaysOf(*l1Page1G_));
    } else {
        // L1-4KB TLB: always enabled.
        const unsigned lw4K = logWaysOf(*l1Page4K_);
        auto res4k = l1Page4K_->lookup(vaddr, asid_);
        chargeRead(m4K_, lw4K, res4k.hit);
        stats_.l1WayLookups4K.record(lw4K);
        if (res4k.hit) {
            pageHit = true;
            pageSource = HitSource::L1Page4K;
            hitEntry = res4k.entry;
            if (lite_)
                lite_->onTlbHit(0, res4k.lruDistance, true);
        }

        if (enabled2M_) {
            const unsigned lw2M = logWaysOf(*l1Page2M_);
            auto res2m = l1Page2M_->lookup(vaddr, asid_);
            chargeRead(m2M_, lw2M, res2m.hit);
            stats_.l1WayLookups2M.record(lw2M);
            if (res2m.hit) {
                eat_assert(!pageHit, "address mapped by two page sizes");
                pageHit = true;
                pageSource = HitSource::L1Page2M;
                hitEntry = res2m.entry;
                if (lite_)
                    lite_->onTlbHit(1, res2m.lruDistance, true);
            }
        }
        if (enabled1G_) {
            auto res1g = l1Page1G_->lookup(vaddr, asid_);
            chargeRead(m1G_, logWaysOf(*l1Page1G_), res1g.hit);
            if (res1g.hit) {
                eat_assert(!pageHit, "address mapped by two page sizes");
                pageHit = true;
                pageSource = HitSource::L1Page1G;
                hitEntry = res1g.entry;
                if (lite_)
                    lite_->onTlbHit(2, res1g.lruDistance, true);
            }
        }
    }

    if (rangeHit || pageHit) {
        ++stats_.l1Hits;
        const HitSource src = rangeHit ? HitSource::L1Range : pageSource;
        ++stats_.hitsBySource[static_cast<unsigned>(src)];
        if (checker_) {
            if (rangeHit) {
                checker_->onRangeTranslation(vaddr, l1r->paddr(vaddr),
                                             hitSourceName(src));
            } else {
                checkPageHit(vaddr, hitEntry, src);
            }
            if ((stats_.memOps & 63) == 0)
                auditWayMasks();
        }
        provEnd(hitSourceName(src), rangeHit ? 0 : hitEntry.shift, true);
        return; // L1 hits are free (parallel with the L1 data cache).
    }

    // ------------------------------------------------------------------
    // L1 miss: the enabled L2 structures are searched in parallel.
    // ------------------------------------------------------------------
    ++stats_.l1Misses;
    stats_.l1MissCycles += cfg_.l2HitLatency;
    if (lite_)
        lite_->onL1Miss();

    std::optional<vm::RangeTranslation> l2r;
    if (l2Range_ && enabledL2Range_) {
        l2r = l2Range_->lookup(vaddr, asid_);
        chargeRead(mL2Range_, 0, l2r.has_value());
    }

    tlb::TlbLookupResult l2res;
    if (cfg_.mixedTlbs) {
        l2res = l2Page_->lookupWithShift(
            vaddr, vm::pageShift(predictPageSize(vaddr)), asid_);
    } else {
        // The L2 TLB holds 4 KB entries only (Sandy Bridge, Table 1);
        // 2 MB translations live solely in the L1-2MB TLB.
        l2res = l2Page_->lookup(vaddr, asid_);
    }
    chargeRead(mL2_, 0, l2res.hit);

    if (l2r) {
        // L2-range hit: copy the range into the L1-range TLB, plus the
        // corresponding page-table entry into the L1-page TLBs (RMM).
        // The PTE is synthesized from the range translation at the
        // page size the page table uses for this address — the two
        // mappings are redundant by construction.
        ++stats_.l2Hits;
        ++stats_.hitsBySource[static_cast<unsigned>(HitSource::L2Range)];
        if (checker_) {
            checker_->onRangeTranslation(
                vaddr, l2r->paddr(vaddr),
                hitSourceName(HitSource::L2Range));
        }
        if (l1Range_) {
            enabledL1Range_ = true;
            chargeWrite(mL1Range_);
            provEvict(mL1Range_, l1Range_->fill(*l2r, asid_));
        }
        auto t = pageTable_->translate(vaddr);
        if (!t)
            eat_panic("range translation without page mapping at ", vaddr);
        fillL1Page(tlb::makePageEntry(vaddr, t->pbase, t->size, asid_));
        provEnd(hitSourceName(HitSource::L2Range),
                vm::pageShift(t->size), false);
        return;
    }
    if (l2res.hit) {
        ++stats_.l2Hits;
        ++stats_.hitsBySource[static_cast<unsigned>(HitSource::L2Page)];
        if (checker_)
            checkPageHit(vaddr, l2res.entry, HitSource::L2Page);
        fillL1Page(l2res.entry);
        provEnd(hitSourceName(HitSource::L2Page), l2res.entry.shift,
                false);
        return;
    }

    // ------------------------------------------------------------------
    // L2 miss: page walk (plus background range-table walk under RMM).
    // ------------------------------------------------------------------
    ++stats_.l2Misses;
    stats_.walkCycles += cfg_.pageWalkLatency;
    ++stats_.hitsBySource[static_cast<unsigned>(HitSource::PageWalk)];

    const auto walk = walker_.walk(vaddr);

    // All three paging-structure caches are probed in parallel.
    chargeRead(mPde_, 0, walk.cache.hitPde);
    chargeRead(mPdpte_, 0, walk.cache.hitPdpte);
    chargeRead(mPml4_, 0, walk.cache.hitPml4);
    if (walk.cache.filledPde)
        chargeWrite(mPde_);
    if (walk.cache.filledPdpte)
        chargeWrite(mPdpte_);
    if (walk.cache.filledPml4)
        chargeWrite(mPml4_);

    stats_.walkMemRefs += walk.cache.memRefs;
    chargeWalkMemory(walk.cache.memRefs, false,
                     tlb::MmuCache::leafLevel(walk.translation.size));

    const auto entry = tlb::makePageEntry(
        vaddr, walk.translation.pbase, walk.translation.size, asid_);
    if (checker_)
        checkPageHit(vaddr, entry, HitSource::PageWalk);
    fillL1Page(entry);
    // The L2 TLB holds 4 KB entries only (Sandy Bridge), except for
    // TLB_PP's mixed L2.
    if (cfg_.mixedTlbs || entry.size == vm::PageSize::Size4K) {
        chargeWrite(mL2_, 0, entry.shift);
        provEvict(mL2_, l2Page_->fill(entry));
    }

    if (rangeWalker_) {
        // The range-table walk happens in the background: dynamic
        // energy, zero cycles (paper §5).
        const auto rw = rangeWalker_->walk(vaddr);
        ++stats_.rangeWalks;
        stats_.rangeWalkMemRefs += rw.memRefs;
        chargeWalkMemory(rw.memRefs, true);
        if (rw.range && l2Range_) {
            enabledL2Range_ = true;
            chargeWrite(mL2Range_);
            provEvict(mL2Range_, l2Range_->fill(*rw.range, asid_));
        }
    }
    provEnd(hitSourceName(HitSource::PageWalk), entry.shift, false);
}

void
Mmu::switchContext(tlb::Asid asid, const vm::PageTable &pageTable,
                   const vm::RangeTable *rangeTable, bool flushTlbs)
{
    if (asid == asid_ && &pageTable == pageTable_)
        return; // same address space: nothing reloads
    ++stats_.contextSwitches;
    asid_ = asid;
    pageTable_ = &pageTable;
    rangeTable_ = rangeTable;
    walker_.setPageTable(pageTable);
    if (rangeWalker_) {
        eat_assert(rangeTable != nullptr,
                   "context switch dropped the range table of a "
                   "range-TLB configuration");
        rangeWalker_->setRangeTable(*rangeTable);
    }
    // The paging-structure caches are untagged (as on x86 parts):
    // a CR3 reload flushes them in both modes.
    mmuCache_.flush();
    if (flushTlbs) {
        l1Page4K_->invalidateAll();
        if (l1Page2M_)
            l1Page2M_->invalidateAll();
        if (l1Page1G_)
            l1Page1G_->invalidateAll();
        l2Page_->invalidateAll();
        if (l1Range_)
            l1Range_->invalidateAll();
        if (l2Range_)
            l2Range_->invalidateAll();
    }
    if (checker_)
        checker_->setActiveAsid(asid);
}

unsigned
Mmu::shootdownInvalidate(Addr vbase, Addr vlimit, tlb::Asid asid,
                         bool initiator)
{
    unsigned n = l1Page4K_->invalidateRange(vbase, vlimit, asid);
    if (l1Page2M_)
        n += l1Page2M_->invalidateRange(vbase, vlimit, asid);
    if (l1Page1G_)
        n += l1Page1G_->invalidateRange(vbase, vlimit, asid);
    n += l2Page_->invalidateRange(vbase, vlimit, asid);
    if (l1Range_)
        n += l1Range_->invalidateRange(vbase, vlimit, asid);
    if (l2Range_)
        n += l2Range_->invalidateRange(vbase, vlimit, asid);
    // The paging-structure caches hold upper-level PTEs of the remapped
    // region; they are untagged, so the whole cache goes.
    mmuCache_.flush();
    if (!initiator)
        ++stats_.shootdownsReceived;
    stats_.shootdownInvalidations += n;
    return n;
}

void
Mmu::chargeShootdown(unsigned remoteCores, unsigned entriesInvalidated)
{
    ++stats_.shootdownsInitiated;
    stats_.shootdownCycles +=
        cfg_.shootdownBaseCycles +
        cfg_.shootdownPerCoreCycles * remoteCores;
    const PicoJoules pj =
        cfg_.shootdownPerCorePj * static_cast<double>(remoteCores) +
        cfg_.shootdownPerEntryPj * static_cast<double>(entriesInvalidated);
    stats_.shootdownEnergyPj += pj;
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({stats_.instructions, 0, pj, obs::ProvKind::Shootdown,
                     obs::ProvStruct::Shootdown, coreId_, asid_, 0, false,
                     remoteCores, entriesInvalidated});
    }
}

void
Mmu::checkPageHit(Addr vaddr, const tlb::TlbEntry &entry, HitSource src)
{
    checker_->onPageTranslation(vaddr, entry.paddr(vaddr), entry.size,
                                hitSourceName(src));
}

void
Mmu::auditWayMasks()
{
    checker_->auditWayMask(*l1Page4K_);
    if (l1Page2M_)
        checker_->auditWayMask(*l1Page2M_);
    if (l1Page1G_)
        checker_->auditWayMask(*l1Page1G_);
    checker_->auditWayMask(*l2Page_);
}

MilliWatts
Mmu::leakagePower(bool gated) const
{
    auto leak = [gated](const Metered &m, unsigned logWays) {
        const auto idx =
            gated ? logWays
                  : static_cast<unsigned>(m.coeffByLogWays.size() - 1);
        return idx < m.coeffByLogWays.size()
                   ? m.coeffByLogWays[idx].leakage
                   : 0.0;
    };
    MilliWatts total = leak(m4K_, logWaysOf(*l1Page4K_)) + leak(mL2_, 0) +
                       leak(mPde_, 0) + leak(mPdpte_, 0) +
                       leak(mPml4_, 0);
    if (l1Page2M_ && enabled2M_)
        total += leak(m2M_, logWaysOf(*l1Page2M_));
    if (l1Page1G_ && enabled1G_)
        total += leak(m1G_, logWaysOf(*l1Page1G_));
    if (l1Range_ && enabledL1Range_)
        total += leak(mL1Range_, 0);
    if (l2Range_ && enabledL2Range_)
        total += leak(mL2Range_, 0);
    return total;
}

void
Mmu::tick(InstrCount n)
{
    stats_.instructions += n;

    // Static energy (paper §6.2): with a base CPI of 1, n instructions
    // take n / f nanoseconds, and pJ = mW * ns.
    const double ns = static_cast<double>(n) / cfg_.clockGhz;
    staticGatedPj_ += leakagePower(true) * ns;
    staticFullPj_ += leakagePower(false) * ns;

    // The interval clock drives Lite decisions and telemetry records;
    // it runs only when at least one consumer is attached.
    if (!lite_ && !telemetry_)
        return;
    instrTowardInterval_ += n;
    const auto interval = cfg_.lite.intervalInstructions;
    while (instrTowardInterval_ >= interval) {
        if (lite_)
            lite_->onIntervalEnd(interval);
        instrTowardInterval_ -= interval;
        // Emit after Lite's decision so the way-mask reflects it.
        if (telemetry_)
            emitIntervalRecord(interval);
    }
}

void
Mmu::registerMetrics(obs::MetricRegistry &registry,
                     const std::string &prefix) const
{
    // Every name below goes through @p name so one registry can hold
    // several cores ("core0.mmu.mem_ops", ...); the single-core prefix
    // is empty and the names are unchanged.
    auto name = [&prefix](const char *n) { return prefix + n; };

    // Datapath event counters.
    registry.addCounter(name("mmu.instructions"), &stats_.instructions);
    registry.addCounter(name("mmu.mem_ops"), &stats_.memOps);
    registry.addCounter(name("mmu.l1_hits"), &stats_.l1Hits);
    registry.addCounter(name("mmu.l1_misses"), &stats_.l1Misses);
    registry.addCounter(name("mmu.l2_hits"), &stats_.l2Hits);
    registry.addCounter(name("mmu.l2_misses"), &stats_.l2Misses);
    registry.addCounter(name("mmu.walk_mem_refs"), &stats_.walkMemRefs);
    registry.addCounter(name("mmu.range_walks"), &stats_.rangeWalks);
    registry.addCounter(name("mmu.range_walk_mem_refs"),
                        &stats_.rangeWalkMemRefs);
    registry.addCounter(name("mmu.l1_miss_cycles"), &stats_.l1MissCycles);
    registry.addCounter(name("mmu.walk_cycles"), &stats_.walkCycles);
    registry.addCounter(name("mmu.context_switches"),
                        &stats_.contextSwitches);
    registry.addCounter(name("mmu.shootdowns_initiated"),
                        &stats_.shootdownsInitiated);
    registry.addCounter(name("mmu.shootdowns_received"),
                        &stats_.shootdownsReceived);
    registry.addCounter(name("mmu.shootdown_invalidations"),
                        &stats_.shootdownInvalidations);
    registry.addCounter(name("mmu.shootdown_cycles"),
                        &stats_.shootdownCycles);

    static constexpr std::array<std::string_view,
                                static_cast<unsigned>(HitSource::Count)>
        kSourceNames{"l1_page4k", "l1_page2m", "l1_page1g", "l1_range",
                     "l2_page",   "l2_range",  "page_walk"};
    for (unsigned i = 0; i < kSourceNames.size(); ++i) {
        registry.addCounter(
            name("mmu.hits.") + std::string(kSourceNames[i]),
            &stats_.hitsBySource[i]);
    }

    registry.addHistogram(name("mmu.l1_way_lookups_4k"),
                          &stats_.l1WayLookups4K);
    if (l1Page2M_) {
        registry.addHistogram(name("mmu.l1_way_lookups_2m"),
                              &stats_.l1WayLookups2M);
    }

    // Per-structure hit/miss/fill counters (accessor-backed closures).
    auto addPageTlb = [&registry](std::string prefix,
                                  const tlb::SetAssocTlb *t) {
        registry.addCounter(prefix + ".hits", [t] { return t->hits(); });
        registry.addCounter(prefix + ".misses",
                            [t] { return t->misses(); });
        registry.addCounter(prefix + ".fills", [t] { return t->fills(); });
        registry.addCounter(prefix + ".resizes",
                            [t] { return t->resizes(); });
        registry.addGauge(prefix + ".active_ways", [t] {
            return static_cast<double>(t->activeWays());
        });
    };
    auto addRangeTlb = [&registry](std::string prefix,
                                   const tlb::RangeTlb *t) {
        registry.addCounter(prefix + ".hits", [t] { return t->hits(); });
        registry.addCounter(prefix + ".misses",
                            [t] { return t->misses(); });
        registry.addCounter(prefix + ".fills", [t] { return t->fills(); });
    };

    addPageTlb(name("l1.tlb4k"), l1Page4K_.get());
    if (l1Page2M_)
        addPageTlb(name("l1.tlb2m"), l1Page2M_.get());
    if (l1Page1G_)
        addPageTlb(name("l1.tlb1g"), l1Page1G_.get());
    addPageTlb(name("l2.tlb"), l2Page_.get());
    if (l1Range_)
        addRangeTlb(name("l1.range"), l1Range_.get());
    if (l2Range_)
        addRangeTlb(name("l2.range"), l2Range_.get());

    // Energy: totals plus per-structure meters.
    registry.addGauge(name("energy.dynamic_pj"),
                      [this] { return dynamicEnergyTotal(); });
    registry.addGauge(name("energy.leakage_mw"),
                      [this] { return leakagePower(true); });
    registry.addGauge(name("energy.static_gated_pj"),
                      [this] { return staticGatedPj_; });
    registry.addGauge(name("energy.static_full_pj"),
                      [this] { return staticFullPj_; });
    registry.addGauge(name("energy.shootdown_pj"),
                      [this] { return stats_.shootdownEnergyPj; });

    auto addMeter = [&registry](std::string prefix,
                                const energy::EnergyMeter *m) {
        registry.addCounter(prefix + ".reads", [m] { return m->reads(); });
        registry.addCounter(prefix + ".writes",
                            [m] { return m->writes(); });
        registry.addGauge(prefix + ".read_pj",
                          [m] { return m->readEnergy(); });
        registry.addGauge(prefix + ".write_pj",
                          [m] { return m->writeEnergy(); });
    };
    addMeter(name("energy.l1_tlb4k"), &m4K_.meter);
    if (l1Page2M_) {
        addMeter(name("energy.l1_tlb2m"), &m2M_.meter);
        addMeter(name("energy.l1_tlb1g"), &m1G_.meter);
    }
    addMeter(name("energy.l2_tlb"), &mL2_.meter);
    if (l1Range_)
        addMeter(name("energy.l1_range"), &mL1Range_.meter);
    if (l2Range_)
        addMeter(name("energy.l2_range"), &mL2Range_.meter);
    addMeter(name("energy.mmu_pde"), &mPde_.meter);
    addMeter(name("energy.mmu_pdpte"), &mPdpte_.meter);
    addMeter(name("energy.mmu_pml4"), &mPml4_.meter);
    addMeter(name("energy.walk_mem"), &walkMemMeter_);
    if (rangeWalker_)
        addMeter(name("energy.range_walk_mem"), &rangeWalkMemMeter_);

    if (lite_)
        lite_->registerMetrics(registry, prefix);
}

void
Mmu::setTelemetry(obs::TelemetrySink *sink)
{
    telemetry_ = sink;
}

void
Mmu::setTrace(obs::TraceWriter *trace)
{
    trace_ = trace;
    if (trace_)
        trace_->registerClock(coreId_, &stats_.instructions);
    if (lite_)
        lite_->setTrace(trace, coreId_);
}

void
Mmu::setInjectStats(const check::InjectStats *stats)
{
    injectStats_ = stats;
}

void
Mmu::setProvenance(obs::ProvenanceSink *sink)
{
    prov_ = obs::kProvenanceCompiledIn ? sink : nullptr;
    if (lite_) {
        // Lite's resize hook mirrors the ctor's monitored-TLB order.
        std::vector<obs::ProvStruct> ids{obs::ProvStruct::L1Tlb4K};
        if (l1Page2M_)
            ids.push_back(obs::ProvStruct::L1Tlb2M);
        if (l1Page1G_)
            ids.push_back(obs::ProvStruct::L1Tlb1G);
        lite_->setProvenance(prov_, coreId_, &stats_.instructions,
                             std::move(ids));
    }
}

PicoJoules
Mmu::dynamicEnergyTotal() const
{
    return m4K_.meter.total() + m2M_.meter.total() + m1G_.meter.total() +
           mL2_.meter.total() + mL1Range_.meter.total() +
           mL2Range_.meter.total() + mPde_.meter.total() +
           mPdpte_.meter.total() + mPml4_.meter.total() +
           walkMemMeter_.total() + rangeWalkMemMeter_.total();
}

void
Mmu::emitIntervalRecord(InstrCount intervalInstructions)
{
    obs::IntervalRecord rec;
    rec.core = coreId_;
    rec.interval = intervalIndex_++;
    rec.startInstr = lastInterval_.instructions;
    rec.instructions = intervalInstructions;

    // Interval deltas. A tick retiring several intervals at once books
    // all its events into the first one it closes; the rest read zero.
    rec.memOps = stats_.memOps - lastInterval_.memOps;
    rec.l1Hits = stats_.l1Hits - lastInterval_.l1Hits;
    rec.l1Misses = stats_.l1Misses - lastInterval_.l1Misses;
    rec.l2Hits = stats_.l2Hits - lastInterval_.l2Hits;
    rec.l2Misses = stats_.l2Misses - lastInterval_.l2Misses;
    const Cycles missCycles = stats_.tlbMissCycles();
    rec.missCycles = missCycles - lastInterval_.missCycles;
    const PicoJoules dynamicPj = dynamicEnergyTotal();
    rec.dynamicPj = dynamicPj - lastInterval_.dynamicPj;

    const double kilo = static_cast<double>(intervalInstructions) / 1000.0;
    rec.l1Mpki = kilo > 0.0 ? static_cast<double>(rec.l1Misses) / kilo : 0.0;
    rec.l2Mpki = kilo > 0.0 ? static_cast<double>(rec.l2Misses) / kilo : 0.0;
    rec.l1HitRatio =
        rec.memOps > 0 ? static_cast<double>(rec.l1Hits) /
                             static_cast<double>(rec.memOps)
                       : 0.0;
    const std::uint64_t l2Lookups = rec.l2Hits + rec.l2Misses;
    rec.l2HitRatio =
        l2Lookups > 0 ? static_cast<double>(rec.l2Hits) /
                            static_cast<double>(l2Lookups)
                      : 0.0;

    rec.wayMask.emplace_back(l1Page4K_->name(), l1Page4K_->activeWays());
    if (l1Page2M_)
        rec.wayMask.emplace_back(l1Page2M_->name(),
                                 l1Page2M_->activeWays());
    if (l1Page1G_)
        rec.wayMask.emplace_back(l1Page1G_->name(),
                                 l1Page1G_->activeWays());

    std::uint64_t mismatches = 0;
    if (checker_) {
        mismatches = checker_->stats().mismatches();
        rec.checkMismatches = mismatches - lastInterval_.checkMismatches;
    }
    std::uint64_t injected = 0;
    if (injectStats_) {
        injected = injectStats_->injected();
        rec.faultsInjected = injected - lastInterval_.faultsInjected;
    }

    lastInterval_.instructions += intervalInstructions;
    lastInterval_.memOps = stats_.memOps;
    lastInterval_.l1Hits = stats_.l1Hits;
    lastInterval_.l1Misses = stats_.l1Misses;
    lastInterval_.l2Hits = stats_.l2Hits;
    lastInterval_.l2Misses = stats_.l2Misses;
    lastInterval_.missCycles = missCycles;
    lastInterval_.dynamicPj = dynamicPj;
    lastInterval_.checkMismatches = mismatches;
    lastInterval_.faultsInjected = injected;

    // The interval marker carries the same delta telemetry writes, so
    // eatreport can reconcile the two streams row by row.
    if (EAT_PROV_ENABLED && prov_) {
        prov_->emit({stats_.instructions, rec.interval, rec.dynamicPj,
                     obs::ProvKind::Interval, obs::ProvStruct::None,
                     coreId_, asid_, 0, false, 0, 0});
    }

    telemetry_->emit(rec);
}

energy::EnergyReport
Mmu::energyReport() const
{
    energy::EnergyReport report;
    auto addStruct = [&report](const std::string &name, const Metered &m,
                               PicoJoules &category) {
        if (m.meter.reads() == 0 && m.meter.writes() == 0)
            return;
        category += m.meter.total();
        report.structs.push_back({name, m.meter.reads(), m.meter.writes(),
                                  m.meter.readEnergy(),
                                  m.meter.writeEnergy(), m.id});
    };

    auto &b = report.breakdown;
    addStruct(l1Page4K_->name(), m4K_, b.l1Tlb);
    if (l1Page2M_)
        addStruct(l1Page2M_->name(), m2M_, b.l1Tlb);
    if (l1Page1G_)
        addStruct(l1Page1G_->name(), m1G_, b.l1Tlb);
    if (l1Range_)
        addStruct(l1Range_->name(), mL1Range_, b.l1Tlb);
    addStruct(l2Page_->name(), mL2_, b.l2Tlb);
    if (l2Range_)
        addStruct(l2Range_->name(), mL2Range_, b.l2Tlb);
    addStruct("MMU-cache-PDE", mPde_, b.mmuCache);
    addStruct("MMU-cache-PDPTE", mPdpte_, b.mmuCache);
    addStruct("MMU-cache-PML4", mPml4_, b.mmuCache);

    b.pageWalkMem = walkMemMeter_.total();
    if (walkMemMeter_.reads() > 0) {
        report.structs.push_back({"page-walk memory", walkMemMeter_.reads(),
                                  0, walkMemMeter_.readEnergy(), 0.0,
                                  obs::ProvStruct::WalkMem});
    }
    b.rangeWalkMem = rangeWalkMemMeter_.total();
    if (rangeWalkMemMeter_.reads() > 0) {
        report.structs.push_back({"range-walk memory",
                                  rangeWalkMemMeter_.reads(), 0,
                                  rangeWalkMemMeter_.readEnergy(), 0.0,
                                  obs::ProvStruct::RangeWalkMem});
    }

    // Leakage of the currently active configuration and the static
    // energy integrals (companion metrics; the headline results are
    // dynamic energy).
    report.leakagePower = leakagePower(true);
    report.staticEnergyGated = staticGatedPj_;
    report.staticEnergyFull = staticFullPj_;

    return report;
}

} // namespace eat::core
