/**
 * @file
 * Tests for the set-associative TLB: lookup/fill/LRU semantics, the
 * LRU-distance reporting Lite depends on, way-disabling, and the LRU
 * inclusion property that makes Lite's miss predictions exact.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/rng.hh"
#include "tlb/fully_assoc_tlb.hh"
#include "tlb/set_assoc_tlb.hh"

namespace eat::tlb
{
namespace
{

using vm::PageSize;

TlbEntry
entry4K(Addr vpnIndex, Addr pbase = 0x100000)
{
    return makePageEntry(vpnIndex << 12, pbase, PageSize::Size4K);
}

TEST(SetAssocTlb, Geometry)
{
    SetAssocTlb t("t", 64, 4, 12);
    EXPECT_EQ(t.sets(), 16u);
    EXPECT_EQ(t.ways(), 4u);
    EXPECT_EQ(t.activeWays(), 4u);
    EXPECT_EQ(t.entries(), 64u);
    EXPECT_EQ(t.activeEntries(), 64u);
    EXPECT_FALSE(t.fullyAssociative());
}

TEST(SetAssocTlb, RejectsBadGeometry)
{
    EXPECT_THROW(SetAssocTlb("t", 64, 0, 12), std::logic_error);
    EXPECT_THROW(SetAssocTlb("t", 60, 4, 12), std::logic_error);
    EXPECT_THROW(SetAssocTlb("t", 48, 4, 12), std::logic_error); // 12 sets
}

TEST(SetAssocTlb, MissThenFillThenHit)
{
    SetAssocTlb t("t", 64, 4, 12);
    EXPECT_FALSE(t.lookup(0x1000).hit);
    t.fill(entry4K(1));
    auto res = t.lookup(0x1234);
    EXPECT_TRUE(res.hit);
    EXPECT_EQ(res.entry.paddr(0x1234), 0x100234u);
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
    EXPECT_EQ(t.fills(), 1u);
}

TEST(SetAssocTlb, EvictsTrueLru)
{
    SetAssocTlb t("t", 64, 4, 12);
    // Five pages mapping to set 0 (VPNs 0, 16, 32, 48, 64).
    for (Addr i = 0; i < 4; ++i)
        t.fill(entry4K(i * 16));
    // Touch all but VPN 16, making it the LRU.
    (void)t.lookup(0);
    (void)t.lookup(32 << 12);
    (void)t.lookup(48 << 12);
    t.fill(entry4K(64)); // evicts VPN 16
    EXPECT_TRUE(t.probe(0));
    EXPECT_FALSE(t.probe(16ull << 12));
    EXPECT_TRUE(t.probe(32ull << 12));
    EXPECT_TRUE(t.probe(64ull << 12));
}

TEST(SetAssocTlb, RefillUpdatesExistingEntry)
{
    SetAssocTlb t("t", 64, 4, 12);
    t.fill(entry4K(1, 0x100000));
    t.fill(entry4K(1, 0x200000));
    EXPECT_EQ(t.validCount(), 1u);
    EXPECT_EQ(t.lookup(0x1000).entry.pbase, 0x200000u);
}

TEST(SetAssocTlb, FillPrefersInvalidSlotOverEviction)
{
    SetAssocTlb t("t", 64, 4, 12);
    // Two valid entries in set 0, two invalid ways. Touch both so
    // neither is obviously "oldest", then fill: nothing may be
    // evicted — the single-pass victim scan must land on an invalid
    // slot, not the LRU entry.
    t.fill(entry4K(0));
    t.fill(entry4K(16));
    (void)t.lookup(16ull << 12);
    (void)t.lookup(0);
    t.fill(entry4K(32));
    EXPECT_EQ(t.validCount(), 3u);
    EXPECT_TRUE(t.probe(0));
    EXPECT_TRUE(t.probe(16ull << 12));
    EXPECT_TRUE(t.probe(32ull << 12));
}

TEST(SetAssocTlb, LogActiveWaysTracksResizes)
{
    SetAssocTlb t("t", 64, 4, 12);
    EXPECT_EQ(t.logActiveWays(), 2u);
    t.setActiveWays(1);
    EXPECT_EQ(t.logActiveWays(), 0u);
    t.setActiveWays(4);
    EXPECT_EQ(t.logActiveWays(), 2u);
    // forceActiveWays (the glitch-injection hook) can set a non-power-
    // of-two; the cache must follow floorLog2 exactly.
    t.forceActiveWays(3);
    EXPECT_EQ(t.logActiveWays(), 1u);
}

TEST(SetAssocTlb, LruDistanceReporting)
{
    SetAssocTlb t("t", 64, 4, 12);
    for (Addr i = 0; i < 4; ++i)
        t.fill(entry4K(i * 16)); // all in set 0; VPN 48 is MRU
    // MRU hit: distance 3.
    EXPECT_EQ(t.lookup(48ull << 12).lruDistance, 3u);
    // Now 48 is still MRU; LRU is 0: distance 0.
    EXPECT_EQ(t.lookup(0).lruDistance, 0u);
    // 0 became MRU. 16 is now LRU: distance 0; 32 is second: 1.
    EXPECT_EQ(t.lookup(32ull << 12).lruDistance, 1u);
}

TEST(SetAssocTlb, DistanceCountsInvalidWaysAsLru)
{
    SetAssocTlb t("t", 64, 4, 12);
    t.fill(entry4K(0));
    // Only one valid entry in a 4-way set: it is at the MRU position
    // (distance 3), with the three invalid ways below it.
    EXPECT_EQ(t.lookup(0).lruDistance, 3u);
}

TEST(SetAssocTlb, WayDisablingInvalidatesVictims)
{
    SetAssocTlb t("t", 64, 4, 12);
    for (Addr i = 0; i < 4; ++i)
        t.fill(entry4K(i * 16));
    EXPECT_EQ(t.validCount(), 4u);
    t.setActiveWays(1);
    EXPECT_EQ(t.activeWays(), 1u);
    EXPECT_EQ(t.activeEntries(), 16u);
    EXPECT_EQ(t.validCount(), 1u); // ways 1-3 invalidated
    EXPECT_EQ(t.resizes(), 1u);
}

TEST(SetAssocTlb, ReenabledWaysHoldNoStaleEntries)
{
    SetAssocTlb t("t", 64, 4, 12);
    for (Addr i = 0; i < 4; ++i)
        t.fill(entry4K(i * 16));
    t.setActiveWays(1);
    t.setActiveWays(4);
    // Whatever survived way 0 may hit; the disabled ways must not
    // resurrect their old translations (consistency, paper §4.2.3).
    unsigned hits = 0;
    for (Addr i = 0; i < 4; ++i)
        hits += t.probe((i * 16) << 12) ? 1 : 0;
    EXPECT_EQ(hits, 1u);
    EXPECT_EQ(t.validCount(), 1u);
}

TEST(SetAssocTlb, DisabledWaysAreNotSearchedOrFilled)
{
    SetAssocTlb t("t", 64, 4, 12);
    t.setActiveWays(2);
    for (Addr i = 0; i < 4; ++i)
        t.fill(entry4K(i * 16));
    // Only 2 of the 4 set-0 pages can be resident.
    EXPECT_EQ(t.validCount(), 2u);
    unsigned hits = 0;
    for (Addr i = 0; i < 4; ++i)
        hits += t.probe((i * 16) << 12) ? 1 : 0;
    EXPECT_EQ(hits, 2u);
}

TEST(SetAssocTlb, SetActiveWaysValidation)
{
    SetAssocTlb t("t", 64, 4, 12);
    EXPECT_THROW(t.setActiveWays(0), std::logic_error);
    EXPECT_THROW(t.setActiveWays(3), std::logic_error);
    EXPECT_THROW(t.setActiveWays(8), std::logic_error);
    t.setActiveWays(4); // no-op does not count as a resize
    EXPECT_EQ(t.resizes(), 0u);
}

TEST(SetAssocTlb, DistanceRangeShrinksWithActiveWays)
{
    SetAssocTlb t("t", 64, 4, 12);
    t.setActiveWays(2);
    t.fill(entry4K(0));
    t.fill(entry4K(16));
    EXPECT_EQ(t.lookup(16ull << 12).lruDistance, 1u); // MRU of 2 ways
    EXPECT_EQ(t.lookup(0).lruDistance, 0u);
}

TEST(SetAssocTlb, InvalidateAllClearsEverything)
{
    SetAssocTlb t("t", 64, 4, 12);
    for (Addr i = 0; i < 32; ++i)
        t.fill(entry4K(i));
    t.invalidateAll();
    EXPECT_EQ(t.validCount(), 0u);
    EXPECT_FALSE(t.probe(0));
}

TEST(SetAssocTlb, MixedSizeLookupWithIndexShift)
{
    // A TLB_PP-style mixed TLB: 4 KB entries index with shift 12,
    // 2 MB entries with shift 21; the tag match uses each entry's own
    // covered region.
    SetAssocTlb t("mixed", 64, 4, 12);
    t.fill(makePageEntry(0x1000, 0x100000, PageSize::Size4K));
    t.fill(makePageEntry(64_MiB, 256_MiB, PageSize::Size2M));

    EXPECT_TRUE(t.lookupWithShift(0x1234, 12).hit);
    auto big = t.lookupWithShift(64_MiB + 12345, 21);
    ASSERT_TRUE(big.hit);
    EXPECT_EQ(big.entry.paddr(64_MiB + 12345), 256_MiB + 12345);
    // Indexing the 2 MB address with the 4 KB shift looks in the wrong
    // set and misses (that is exactly why TLB_Pred needs a predictor).
    EXPECT_FALSE(t.lookupWithShift(64_MiB + 12345, 12).hit);
}

TEST(FullyAssocTlb, IsOneSetOfAllWays)
{
    FullyAssocTlb t("fa", 4, 30);
    EXPECT_TRUE(t.fullyAssociative());
    EXPECT_EQ(t.sets(), 1u);
    EXPECT_EQ(t.ways(), 4u);
    // Entries with wildly different addresses coexist in the one set.
    for (Addr i = 0; i < 4; ++i)
        t.fill(TlbEntry{i * 8_GiB, i * 16_GiB, PageSize::Size1G, 30});
    EXPECT_EQ(t.validCount(), 4u);
    for (Addr i = 0; i < 4; ++i)
        EXPECT_TRUE(t.probe(i * 8_GiB + 123));
    // LRU replacement across the whole structure.
    (void)t.lookup(0);
    t.fill(TlbEntry{40_GiB, 80_GiB, PageSize::Size1G, 30});
    EXPECT_TRUE(t.probe(0));
    EXPECT_FALSE(t.probe(8_GiB)); // entry 1 was LRU
}

/**
 * Property (LRU inclusion / stack property): on any access stream, the
 * hits of a w-way TLB are a subset of the hits of a 2w-way TLB with
 * the same sets. This is what makes the Figure-6 counter predictions
 * exact.
 */
class LruInclusionTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LruInclusionTest, HitsAreNested)
{
    const unsigned sets = GetParam();
    Rng rng(sets * 977 + 13);
    std::vector<SetAssocTlb> tlbs;
    for (unsigned ways : {1u, 2u, 4u, 8u})
        tlbs.emplace_back("t", sets * ways, ways, 12);

    for (int i = 0; i < 4000; ++i) {
        const Addr vaddr = rng.below(sets * 24) << 12; // ~24 pages/set
        std::vector<bool> hit;
        for (auto &t : tlbs) {
            auto res = t.lookup(vaddr);
            hit.push_back(res.hit);
            if (!res.hit)
                t.fill(entry4K(vaddr >> 12));
        }
        for (std::size_t w = 0; w + 1 < hit.size(); ++w) {
            ASSERT_LE(hit[w], hit[w + 1])
                << "inclusion violated at access " << i << " for "
                << (1u << w) << " ways";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, LruInclusionTest,
                         ::testing::Values(1, 2, 4, 16, 64));

} // namespace
} // namespace eat::tlb
