/**
 * @file
 * The QA subsystem's own tests: scenario serialization, generator
 * validity and determinism, shrinker behavior, oracle self-test, and
 * replay of the checked-in seed corpus.
 *
 * EAT_CORPUS_DIR (a compile definition) points at tests/corpus, the
 * seed files CI replays; keeping the replay inside ctest means a plain
 * `ctest` run exercises the full generate/judge/shrink machinery with
 * no extra wiring.
 */

#include <cstdint>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "qa/campaign.hh"
#include "qa/generator.hh"
#include "qa/oracles.hh"
#include "qa/scenario.hh"
#include "qa/shrinker.hh"

namespace eat
{
namespace
{

TEST(QaScenario, JsonRoundTripPreservesEveryField)
{
    qa::Scenario s;
    s.id = 17;
    s.workload = "omnetpp";
    s.org = core::MmuOrg::RmmLite;
    s.simInstructions = 123'456;
    s.fastForward = 7'890;
    s.seed = 0xdeadbeefcafeull;
    s.timelineInterval = 5'000;
    s.eagerRanges = 3;
    s.combinedL1 = false;
    s.liteInterval = 20'000;
    s.liteEpsilon = 0.125;
    s.liteFullActProb = 0.03125;
    s.faultSpec = "ppn-flip@l1-4k:0.01";

    const auto parsed = qa::scenarioFromJson(s.toJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    EXPECT_EQ(parsed.value().toJson(), s.toJson());
    EXPECT_EQ(parsed.value().describe(), s.describe());
}

TEST(QaScenario, SaveAndLoadRoundTrip)
{
    const std::string path =
        ::testing::TempDir() + "/qa_scenario_roundtrip.json";
    qa::Scenario s;
    s.id = 3;
    s.workload = "canneal";
    s.org = core::MmuOrg::TlbPP;
    ASSERT_TRUE(qa::saveScenario(s, path).ok());
    const auto loaded = qa::loadScenario(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_EQ(loaded.value().toJson(), s.toJson());
}

TEST(QaScenario, RejectsMalformedSeedFiles)
{
    // Each entry: a broken document and a fragment of the expected
    // diagnostic.
    const std::pair<const char *, const char *> cases[] = {
        {"not json at all", "JSON"},
        {"{\"schema\": \"other\", \"v\": 1}", "schema"},
        {"{\"schema\": \"eat.qa.scenario\", \"v\": 99}", "version"},
    };
    for (const auto &[text, fragment] : cases) {
        const auto parsed = qa::scenarioFromJson(text);
        ASSERT_FALSE(parsed.ok()) << text;
        EXPECT_NE(parsed.status().message().find(fragment),
                  std::string::npos)
            << "diagnostic for '" << text
            << "' was: " << parsed.status().message();
    }

    qa::Scenario s;
    std::string bad = s.toJson();
    const auto pos = bad.find("\"mcf\"");
    ASSERT_NE(pos, std::string::npos);
    bad.replace(pos, 5, "\"nonexistent-workload\"");
    const auto parsed = qa::scenarioFromJson(bad);
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("workload"),
              std::string::npos);
}

TEST(QaScenario, RejectsInvalidFaultSpec)
{
    qa::Scenario s;
    s.faultSpec = "frobnicate@l1-4k:0.5";
    const auto parsed = qa::scenarioFromJson(s.toJson());
    ASSERT_FALSE(parsed.ok());
    EXPECT_NE(parsed.status().message().find("fault_spec"),
              std::string::npos);
}

TEST(QaGenerator, IsDeterministicPerSeedAndIndex)
{
    for (std::uint64_t i = 0; i < 50; ++i) {
        EXPECT_EQ(qa::generateScenario(9, i).toJson(),
                  qa::generateScenario(9, i).toJson());
    }
    // Different indices (and different campaign seeds) must actually
    // vary: identical scenarios would mean the mixing is broken.
    std::set<std::string> distinct;
    for (std::uint64_t i = 0; i < 50; ++i)
        distinct.insert(qa::generateScenario(9, i).toJson());
    EXPECT_GT(distinct.size(), 45u);
    EXPECT_NE(qa::generateScenario(9, 0).toJson(),
              qa::generateScenario(10, 0).toJson());
}

TEST(QaGenerator, CoversAllOrganizationsAndValidates)
{
    std::set<core::MmuOrg> orgs;
    bool sawFaults = false, sawLiteOverride = false;
    for (std::uint64_t i = 0; i < 200; ++i) {
        const auto s = qa::generateScenario(123, i);
        orgs.insert(s.org);
        sawFaults = sawFaults || !s.faultSpec.empty();
        sawLiteOverride = sawLiteOverride || s.liteInterval > 0;
        // Every generated scenario must describe a machine the
        // simulator will accept and a loadable seed file.
        const auto cfg = s.toSimConfig();
        EXPECT_TRUE(cfg.mmu.validate().ok()) << s.describe();
        EXPECT_TRUE(qa::scenarioFromJson(s.toJson()).ok()) << s.describe();
        EXPECT_GE(s.simInstructions, 30'000u);
        EXPECT_LE(s.simInstructions, 300'000u);
    }
    EXPECT_EQ(orgs.size(), core::allOrgs().size())
        << "200 scenarios must cover all organizations";
    EXPECT_TRUE(sawFaults);
    EXPECT_TRUE(sawLiteOverride);
}

TEST(QaShrinker, ReachesAFixpointAndKeepsTheFailure)
{
    qa::Scenario s;
    s.simInstructions = 160'000;
    s.fastForward = 30'000;
    s.timelineInterval = 10'000;
    s.eagerRanges = 4;
    s.combinedL1 = true;
    s.faultSpec = "tag-flip@any:0.001,ppn-flip@l2:0.01,drop-inv:0.001";

    // Synthetic failure: anything with >= 20k instructions and a
    // ppn-flip clause "fails". The shrinker must strip everything else.
    auto fails = [](const qa::Scenario &c) {
        return c.simInstructions >= 20'000 &&
               c.faultSpec.find("ppn-flip") != std::string::npos;
    };
    ASSERT_TRUE(fails(s));
    const auto shrunk = qa::shrinkScenario(s, fails);
    EXPECT_TRUE(fails(shrunk.scenario));
    EXPECT_EQ(shrunk.scenario.fastForward, 0u);
    EXPECT_EQ(shrunk.scenario.timelineInterval, 0u);
    EXPECT_EQ(shrunk.scenario.eagerRanges, 0u);
    EXPECT_FALSE(shrunk.scenario.combinedL1);
    EXPECT_EQ(shrunk.scenario.faultSpec, "ppn-flip@l2:0.01");
    // 160k halves to 20k (>= the 20k the predicate needs); the next
    // halving would pass, so it must be rejected.
    EXPECT_EQ(shrunk.scenario.simInstructions, 20'000u);
    EXPECT_GT(shrunk.accepted, 0u);
}

TEST(QaShrinker, RespectsTheAttemptBudget)
{
    qa::Scenario s;
    s.simInstructions = 300'000;
    s.fastForward = 50'000;
    unsigned calls = 0;
    qa::ShrinkOptions options;
    options.maxAttempts = 3;
    const auto shrunk = qa::shrinkScenario(
        s,
        [&calls](const qa::Scenario &) {
            ++calls;
            return true;
        },
        options);
    EXPECT_LE(calls, 3u);
    EXPECT_EQ(shrunk.attempts, calls);
}

TEST(QaOracles, DigestIsStableAndSensitive)
{
    qa::Scenario s;
    s.workload = "astar";
    s.org = core::MmuOrg::Base4K;
    s.simInstructions = 30'000;
    const auto a = sim::simulate(s.toSimConfig());
    const auto b = sim::simulate(s.toSimConfig());
    EXPECT_EQ(qa::resultDigest(a), qa::resultDigest(b));

    qa::Scenario other = s;
    other.seed = s.seed + 1;
    const auto c = sim::simulate(other.toSimConfig());
    EXPECT_NE(qa::resultDigest(a), qa::resultDigest(c));
}

TEST(QaOracles, SelfTestProvesTheOraclesHaveTeeth)
{
    // The acceptance demonstration: deliberately seeded defects (a
    // skipped energy charge, corrupted TLB fills) are caught and the
    // failure shrinks to a replayable seed.
    std::ostringstream log;
    const Status s = qa::runSelfTest(log);
    EXPECT_TRUE(s.ok()) << s.message() << "\nlog:\n" << log.str();
}

TEST(QaCampaign, SmallCampaignIsCleanAndDeterministic)
{
    qa::CampaignOptions options;
    options.seed = 42;
    options.runs = 6;
    options.jobs = 2;
    options.verdictsPath =
        ::testing::TempDir() + "/qa_campaign_verdicts.jsonl";

    std::ostringstream log;
    const auto first = qa::runCampaign(options, log);
    ASSERT_TRUE(first.ok()) << first.status().message();
    EXPECT_EQ(first.value().passed, options.runs);
    EXPECT_TRUE(first.value().clean());

    std::ifstream verdicts(options.verdictsPath);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(verdicts, line)) {
        ++lines;
        EXPECT_NE(line.find("\"schema\":\"eat.qa.verdict\""),
                  std::string::npos)
            << line;
        EXPECT_NE(line.find("\"status\":\"pass\""), std::string::npos)
            << line;
    }
    EXPECT_EQ(lines, options.runs);
}

TEST(QaCampaign, ReplaysTheCheckedInCorpusClean)
{
    // The same replay CI runs: every seed in tests/corpus must pass
    // every applicable oracle.
    qa::CampaignOptions options;
    std::ostringstream log;
    const auto summary = qa::replayCorpus(EAT_CORPUS_DIR, options, log);
    ASSERT_TRUE(summary.ok()) << summary.status().message();
    EXPECT_GE(summary.value().scenarios, 6u)
        << "corpus unexpectedly small; see " << EAT_CORPUS_DIR;
    EXPECT_TRUE(summary.value().clean()) << log.str();
}

} // namespace
} // namespace eat
