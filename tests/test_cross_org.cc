/**
 * @file
 * Cross-organization structural properties, parameterized over all six
 * organizations: wiring, masking, accounting, and determinism
 * invariants that must hold regardless of workload.
 */

#include <gtest/gtest.h>

#include "core/mmu.hh"
#include "vm/memory_manager.hh"
#include "workloads/workload.hh"

namespace eat::core
{
namespace
{

class OrgTest : public ::testing::TestWithParam<MmuOrg>
{
  protected:
    /** A tiny self-contained process touching 4 KB and 2 MB pages. */
    void
    SetUp() override
    {
        auto policy = MmuConfig::make(GetParam()).osPolicy();
        mm = std::make_unique<vm::MemoryManager>(policy, 128_MiB);
        big = mm->mmap(16_MiB); // 2 MB-eligible
        small = mm->mmap(64_KiB);
    }

    Mmu
    makeMmu()
    {
        const auto cfg = MmuConfig::make(GetParam());
        const vm::RangeTable *rt =
            (cfg.hasL1Range || cfg.hasL2Range) ? &mm->rangeTable()
                                               : nullptr;
        return Mmu(cfg, mm->pageTable(), rt);
    }

    void
    drive(Mmu &mmu, int ops)
    {
        for (int i = 0; i < ops; ++i) {
            mmu.tick(3);
            const Addr base = (i % 3 == 0) ? small.vbase : big.vbase;
            const std::uint64_t span =
                (i % 3 == 0) ? small.bytes : big.bytes;
            mmu.access(base + (static_cast<std::uint64_t>(i) * 4096 +
                               i % 64 * 8) %
                                  span);
        }
    }

    std::unique_ptr<vm::MemoryManager> mm;
    vm::Region big, small;
};

TEST_P(OrgTest, EveryOpIsAccountedExactlyOnce)
{
    auto mmu = makeMmu();
    drive(mmu, 5000);
    const auto &s = mmu.stats();
    EXPECT_EQ(s.memOps, 5000u);
    EXPECT_EQ(s.l1Hits + s.l2Hits + s.l2Misses, s.memOps);
    std::uint64_t bySource = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(HitSource::Count); ++i)
        bySource += s.hitsBySource[i];
    EXPECT_EQ(bySource, s.memOps);
}

TEST_P(OrgTest, EnergyIsStrictlyPositiveAndConsistent)
{
    auto mmu = makeMmu();
    drive(mmu, 2000);
    const auto r = mmu.energyReport();
    EXPECT_GT(r.breakdown.total(), 0.0);
    double structTotal = 0.0;
    for (const auto &row : r.structs) {
        EXPECT_FALSE(row.name.empty());
        structTotal += row.readEnergy + row.writeEnergy;
    }
    EXPECT_NEAR(structTotal, r.breakdown.total(),
                r.breakdown.total() * 1e-12);
    EXPECT_GT(r.leakagePower, 0.0);
    EXPECT_LE(r.staticEnergyGated, r.staticEnergyFull + 1e-9);
}

TEST_P(OrgTest, CycleModelIsExactlyTheTable3Formula)
{
    auto mmu = makeMmu();
    drive(mmu, 3000);
    const auto &s = mmu.stats();
    EXPECT_EQ(s.l1MissCycles, s.l1Misses * 7);
    EXPECT_EQ(s.walkCycles, s.l2Misses * 50);
}

TEST_P(OrgTest, RangeStructuresOnlyInRangeOrgs)
{
    auto mmu = makeMmu();
    const auto cfg = MmuConfig::make(GetParam());
    EXPECT_EQ(mmu.l1RangeTlb() != nullptr, cfg.hasL1Range);
    EXPECT_EQ(mmu.l2RangeTlb() != nullptr, cfg.hasL2Range);
    EXPECT_EQ(mmu.lite() != nullptr, cfg.liteEnabled);
    EXPECT_EQ(mmu.l1Tlb2M() == nullptr, cfg.mixedTlbs);
}

TEST_P(OrgTest, DeterministicAcrossInstances)
{
    auto a = makeMmu();
    auto b = makeMmu();
    drive(a, 4000);
    drive(b, 4000);
    EXPECT_EQ(a.stats().l1Misses, b.stats().l1Misses);
    EXPECT_EQ(a.stats().l2Misses, b.stats().l2Misses);
    EXPECT_DOUBLE_EQ(a.energyReport().breakdown.total(),
                     b.energyReport().breakdown.total());
}

TEST_P(OrgTest, RangeWalkEnergyOnlyWithRangeTables)
{
    auto mmu = makeMmu();
    drive(mmu, 3000);
    const auto r = mmu.energyReport();
    const auto cfg = MmuConfig::make(GetParam());
    if (cfg.hasL2Range) {
        EXPECT_GT(r.breakdown.rangeWalkMem, 0.0);
    } else {
        EXPECT_DOUBLE_EQ(r.breakdown.rangeWalkMem, 0.0);
    }
}

TEST_P(OrgTest, HugePagesOnlyWhereThePolicyAllows)
{
    const auto policy = MmuConfig::make(GetParam()).osPolicy();
    const auto huge = mm->pageTable().pageCount(vm::PageSize::Size2M);
    if (policy.transparentHugePages) {
        EXPECT_GT(huge, 0u);
    } else {
        EXPECT_EQ(huge, 0u);
    }
    const bool hasRanges = !mm->rangeTable().empty();
    EXPECT_EQ(hasRanges, policy.eagerPaging);
}

INSTANTIATE_TEST_SUITE_P(
    AllOrgs, OrgTest,
    ::testing::Values(MmuOrg::Base4K, MmuOrg::Thp, MmuOrg::TlbLite,
                      MmuOrg::Rmm, MmuOrg::TlbPP, MmuOrg::RmmLite),
    [](const ::testing::TestParamInfo<MmuOrg> &info) {
        std::string name{orgName(info.param)};
        for (auto &ch : name) {
            if (ch != '_' && !std::isalnum(static_cast<unsigned char>(ch)))
                ch = '_';
        }
        return name;
    });

} // namespace
} // namespace eat::core
