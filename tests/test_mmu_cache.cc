/**
 * @file
 * Tests for the MMU paging-structure caches and the walkers: the walk
 * length must follow the deepest applicable cache hit, and fills must
 * install exactly the levels the walk fetched.
 */

#include <gtest/gtest.h>

#include "tlb/mmu_cache.hh"
#include "tlb/page_walker.hh"
#include "tlb/range_walker.hh"
#include "vm/page_table.hh"
#include "vm/range_table.hh"

namespace eat::tlb
{
namespace
{

using vm::PageSize;

TEST(MmuCache, ColdWalkCostsFourRefsAndFillsAllLevels)
{
    MmuCache cache;
    auto out = cache.walkAccess(0x12345678, PageSize::Size4K);
    EXPECT_EQ(out.memRefs, 4u);
    EXPECT_TRUE(out.filledPde);
    EXPECT_TRUE(out.filledPdpte);
    EXPECT_TRUE(out.filledPml4);
    EXPECT_EQ(out.fills(), 3u);
}

TEST(MmuCache, PdeHitShortensWalkToOneRef)
{
    MmuCache cache;
    (void)cache.walkAccess(0x12345678, PageSize::Size4K);
    // Same 2 MB region, different page: the PDE entry covers it.
    auto out = cache.walkAccess(0x12345678 + 0x1000, PageSize::Size4K);
    EXPECT_EQ(out.memRefs, 1u);
    EXPECT_EQ(out.fills(), 0u);
}

TEST(MmuCache, PdpteHitCostsTwoRefs)
{
    MmuCache cache;
    (void)cache.walkAccess(0x12345678, PageSize::Size4K);
    // Same 1 GB region, different 2 MB region: PDPTE hit, PDE miss.
    auto out = cache.walkAccess(0x12345678 + 4_MiB, PageSize::Size4K);
    EXPECT_EQ(out.memRefs, 2u);
    EXPECT_TRUE(out.filledPde);
    EXPECT_FALSE(out.filledPdpte);
}

TEST(MmuCache, Pml4HitCostsThreeRefs)
{
    MmuCache cache;
    (void)cache.walkAccess(0x12345678, PageSize::Size4K);
    // Same 512 GB region, different 1 GB region.
    auto out = cache.walkAccess(0x12345678 + 2_GiB, PageSize::Size4K);
    EXPECT_EQ(out.memRefs, 3u);
    EXPECT_TRUE(out.filledPde);
    EXPECT_TRUE(out.filledPdpte);
    EXPECT_FALSE(out.filledPml4);
}

TEST(MmuCache, HugePageWalksAreShorter)
{
    MmuCache cold2m;
    EXPECT_EQ(cold2m.walkAccess(4_MiB, PageSize::Size2M).memRefs, 3u);
    MmuCache cold1g;
    EXPECT_EQ(cold1g.walkAccess(2_GiB, PageSize::Size1G).memRefs, 2u);

    // Warm: the PDPTE cache (filled by a 4 KB walk nearby) shortens a
    // 2 MB walk to one reference (the leaf PDE fetch).
    MmuCache warm;
    (void)warm.walkAccess(0x1000, PageSize::Size4K);
    EXPECT_EQ(warm.walkAccess(4_MiB, PageSize::Size2M).memRefs, 1u);
}

TEST(MmuCache, PdeCacheDoesNotServeHugePages)
{
    // PDE-cache entries are pointers to PTs; a 2 MB walk in the same
    // 2 MB region cannot use them (leaf entries live in the TLB).
    MmuCache cache;
    (void)cache.walkAccess(6_MiB + 0x1000, PageSize::Size4K);
    // New 1 GB region for the 2 MB walk -> only PML4 hit applies.
    auto out = cache.walkAccess(3_GiB, PageSize::Size2M);
    EXPECT_EQ(out.memRefs, 2u);
}

TEST(MmuCache, FlushForgetsEverything)
{
    MmuCache cache;
    (void)cache.walkAccess(0x12345678, PageSize::Size4K);
    cache.flush();
    EXPECT_EQ(cache.walkAccess(0x12345678, PageSize::Size4K).memRefs, 4u);
}

TEST(MmuCache, GeometryMatchesConfig)
{
    MmuCacheConfig cfg;
    MmuCache cache(cfg);
    EXPECT_EQ(cache.pde().entries(), 32u);
    EXPECT_EQ(cache.pde().ways(), 2u);
    EXPECT_EQ(cache.pdpte().entries(), 4u);
    EXPECT_TRUE(cache.pdpte().fullyAssociative());
    EXPECT_EQ(cache.pml4().entries(), 2u);
}

TEST(PageWalker, ResolvesThroughPageTable)
{
    vm::PageTable pt;
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(4_MiB, 16_MiB, PageSize::Size2M);
    MmuCache cache;
    PageWalker walker(pt, cache);

    auto a = walker.walk(0x1234);
    EXPECT_EQ(a.translation.paddr(0x1234), 0x200234u);
    EXPECT_EQ(a.cache.memRefs, 4u);

    auto b = walker.walk(4_MiB + 5);
    EXPECT_EQ(b.translation.size, PageSize::Size2M);
    // PML4 and PDPTE were filled by the first walk (same 1 GB region).
    EXPECT_EQ(b.cache.memRefs, 1u);
}

TEST(PageWalker, UnmappedAddressPanics)
{
    vm::PageTable pt;
    MmuCache cache;
    PageWalker walker(pt, cache);
    EXPECT_THROW((void)walker.walk(0xdead000), std::logic_error);
}

TEST(RangeWalker, FindsRangesAndChargesBTreeDepth)
{
    vm::RangeTable rt;
    rt.insert({0x100000, 0x200000, 0x40000000});
    RangeTableWalker walker(rt);

    auto hit = walker.walk(0x150000);
    ASSERT_TRUE(hit.range.has_value());
    EXPECT_EQ(hit.range->paddr(0x150000), 0x40050000u);
    EXPECT_EQ(hit.memRefs, 1u);

    auto miss = walker.walk(0x999999000);
    EXPECT_FALSE(miss.range.has_value());
    EXPECT_EQ(miss.memRefs, 1u); // the root is still probed
}

} // namespace
} // namespace eat::tlb
