/**
 * @file
 * Tests for the workload substrate: spans, pattern primitives, the
 * operation generator, and the named suites.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/pattern.hh"
#include "workloads/suite.hh"
#include "workloads/workload.hh"

namespace eat::workloads
{
namespace
{

Span
singleExtent(Addr base, std::uint64_t bytes)
{
    return Span({Extent{base, bytes}});
}

TEST(Span, ConcatenatesExtents)
{
    Span s({Extent{0x1000, 0x1000}, Extent{0x100000, 0x2000}});
    EXPECT_EQ(s.bytes(), 0x3000u);
    EXPECT_EQ(s.addrAt(0), 0x1000u);
    EXPECT_EQ(s.addrAt(0xfff), 0x1fffu);
    EXPECT_EQ(s.addrAt(0x1000), 0x100000u);
    EXPECT_EQ(s.addrAt(0x2fff), 0x101fffu);
    EXPECT_THROW(s.addrAt(0x3000), std::logic_error);
}

TEST(Span, FromRegions)
{
    std::vector<vm::Region> regions{{0x1000, 4096}, {0x9000, 8192}};
    auto s = Span::fromRegions(regions);
    EXPECT_EQ(s.bytes(), 12288u);
    EXPECT_EQ(s.numExtents(), 2u);
}

TEST(Patterns, UniformStaysInSpan)
{
    UniformRandomPattern p(singleExtent(0x10000, 0x4000));
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = p.next(rng, 0);
        EXPECT_GE(a, 0x10000u);
        EXPECT_LT(a, 0x14000u);
        EXPECT_EQ(a % 8, 0u); // word aligned
    }
}

TEST(Patterns, WorkingSetRespectsLevels)
{
    WorkingSetPattern p(singleExtent(0, 1_MiB),
                        {{4096, 0.9}, {1_MiB, 0.1}});
    Rng rng(2);
    int inHot = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        inHot += p.next(rng, 0) < 4096 ? 1 : 0;
    // ~90% + the 10% tail that also lands in the first page.
    EXPECT_NEAR(inHot / static_cast<double>(n), 0.9 + 0.1 * 4096.0 / 1_MiB,
                0.02);
}

TEST(Patterns, SequentialWrapsWithStride)
{
    SequentialPattern p(singleExtent(0x1000, 0x100), 64);
    Rng rng(3);
    EXPECT_EQ(p.next(rng, 0), 0x1000u);
    EXPECT_EQ(p.next(rng, 0), 0x1040u);
    EXPECT_EQ(p.next(rng, 0), 0x1080u);
    EXPECT_EQ(p.next(rng, 0), 0x10c0u);
    EXPECT_EQ(p.next(rng, 0), 0x1000u); // wrapped
}

TEST(Patterns, StridedShiftsPhasePerSweep)
{
    StridedPattern p(singleExtent(0, 0x2000), 0x1000);
    Rng rng(4);
    EXPECT_EQ(p.next(rng, 0), 0x0u);
    EXPECT_EQ(p.next(rng, 0), 0x1000u);
    // Second sweep starts at the next element (phase 64).
    EXPECT_EQ(p.next(rng, 0), 0x40u);
    EXPECT_EQ(p.next(rng, 0), 0x1040u);
}

TEST(Patterns, LocalWalkStaysInSpan)
{
    LocalWalkPattern p(singleExtent(0x100000, 0x10000), 0x1000, 0.05);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = p.next(rng, 0);
        EXPECT_GE(a, 0x100000u);
        EXPECT_LT(a, 0x110000u);
    }
}

TEST(Patterns, RegionHotsetFavorsHotRegions)
{
    std::vector<vm::Region> regions;
    for (int i = 0; i < 10; ++i)
        regions.push_back({static_cast<Addr>(i) * 0x100000, 0x10000});
    RegionHotsetPattern p(regions, 2, 0.9);
    Rng rng(6);
    int hot = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        hot += p.next(rng, 0) < 0x200000 ? 1 : 0;
    // 90% hot picks + 20% of the cold picks land in regions 0-1.
    EXPECT_NEAR(hot / static_cast<double>(n), 0.92, 0.02);
}

TEST(Patterns, RegionHotsetWindowsAreStaggeredAndPageAligned)
{
    EXPECT_EQ(RegionHotsetPattern::windowOffset(0, 1_MiB, 8192) % 4096,
              0u);
    std::set<std::uint64_t> offsets;
    for (std::size_t i = 0; i < 8; ++i)
        offsets.insert(RegionHotsetPattern::windowOffset(i, 1_MiB, 8192));
    EXPECT_GT(offsets.size(), 4u); // mostly distinct
    // A window as large as the region sits at offset 0.
    EXPECT_EQ(RegionHotsetPattern::windowOffset(3, 8192, 8192), 0u);
}

TEST(Patterns, MixtureUsesWeights)
{
    std::vector<PatternPtr> kids;
    kids.push_back(
        std::make_unique<UniformRandomPattern>(singleExtent(0, 0x1000)));
    kids.push_back(std::make_unique<UniformRandomPattern>(
        singleExtent(0x100000, 0x1000)));
    MixturePattern p(std::move(kids), {0.25, 0.75});
    Rng rng(7);
    int second = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        second += p.next(rng, 0) >= 0x100000 ? 1 : 0;
    EXPECT_NEAR(second / static_cast<double>(n), 0.75, 0.02);
}

TEST(Patterns, PhasedRotatesOnInstructionClock)
{
    std::vector<PatternPtr> kids;
    kids.push_back(
        std::make_unique<SequentialPattern>(singleExtent(0, 0x1000), 64));
    kids.push_back(std::make_unique<SequentialPattern>(
        singleExtent(0x100000, 0x1000), 64));
    PhasedPattern p(std::move(kids), 1000);
    Rng rng(8);
    EXPECT_LT(p.next(rng, 0), 0x1000u);
    EXPECT_LT(p.next(rng, 999), 0x1000u);
    EXPECT_GE(p.next(rng, 1000), 0x100000u);
    EXPECT_LT(p.next(rng, 2000), 0x1000u); // wrapped back
}

TEST(Generator, GapAverageMatchesOpDensity)
{
    WorkloadSpec spec;
    spec.name = "g";
    spec.memOpsPerKiloInstr = 300;
    spec.allocs = {{1_MiB, 1}};
    spec.buildPattern = [](const std::vector<vm::Region> &r) {
        return std::make_unique<UniformRandomPattern>(
            Span::fromRegions(r));
    };
    vm::MemoryManager mm(vm::OsPolicy{}, 16_MiB);
    WorkloadGenerator gen(spec, mm, 1);
    std::uint64_t ops = 0;
    while (gen.instructionsRetired() < 300'000)
        (void)gen.next(), ++ops;
    EXPECT_NEAR(static_cast<double>(ops), 90'000.0, 2.0);
}

TEST(Generator, DeterministicPerSeed)
{
    auto stream = [](std::uint64_t seed) {
        auto spec = *findWorkload("astar");
        vm::MemoryManager mm(vm::OsPolicy{}, 1_GiB);
        WorkloadGenerator gen(spec, mm, seed);
        std::vector<Addr> v;
        for (int i = 0; i < 2000; ++i)
            v.push_back(gen.next().vaddr);
        return v;
    };
    EXPECT_EQ(stream(1), stream(1));
    EXPECT_NE(stream(1), stream(2));
}

TEST(Generator, SkipAdvancesInstructionClock)
{
    auto spec = *findWorkload("mcf");
    vm::MemoryManager mm(vm::OsPolicy{}, 3_GiB);
    WorkloadGenerator gen(spec, mm, 1);
    gen.skip(1'000'000);
    EXPECT_GE(gen.instructionsRetired(), 1'000'000u);
    EXPECT_LT(gen.instructionsRetired(), 1'000'100u);
}

TEST(Suite, ContainsThePaperWorkloads)
{
    const auto &intensive = tlbIntensiveSuite();
    ASSERT_EQ(intensive.size(), 8u);
    for (const char *name : {"astar", "cactusADM", "GemsFDTD", "mcf",
                             "omnetpp", "zeusmp", "mummer", "canneal"}) {
        EXPECT_TRUE(findWorkload(name).has_value()) << name;
        EXPECT_TRUE(findWorkload(name)->tlbIntensive) << name;
    }
    EXPECT_EQ(spec2006OtherSuite().size(), 22u);
    EXPECT_EQ(parsecOtherSuite().size(), 12u);
    EXPECT_FALSE(findWorkload("nosuchworkload").has_value());
}

TEST(Suite, FootprintsMatchTable4Bands)
{
    // Table 4 footprints (paper): astar 350 MB, cactusADM 690 MB,
    // GemsFDTD 860 MB, mcf 1.7 GB, omnetpp 165 MB, zeusmp 530 MB,
    // mummer 470 MB, canneal 780 MB. Allow 20% modeling slack.
    const std::pair<const char *, double> expect[] = {
        {"astar", 350}, {"cactusADM", 690}, {"GemsFDTD", 860},
        {"mcf", 1700},  {"omnetpp", 165},   {"zeusmp", 530},
        {"mummer", 470}, {"canneal", 780},
    };
    for (const auto &[name, mib] : expect) {
        const auto w = findWorkload(name);
        ASSERT_TRUE(w.has_value());
        const double actual =
            static_cast<double>(w->footprintBytes()) / 1_MiB;
        EXPECT_GT(actual, mib * 0.8) << name;
        EXPECT_LT(actual, mib * 1.2) << name;
    }
}

TEST(Suite, AllWorkloadsBuildAndGenerate)
{
    for (const auto &spec : allWorkloads()) {
        vm::OsPolicy policy;
        policy.transparentHugePages = true;
        vm::MemoryManager mm(policy,
                             spec.footprintBytes() +
                                 spec.footprintBytes() / 4 + 256_MiB);
        WorkloadGenerator gen(spec, mm, 1);
        // Every generated address must be mapped.
        for (int i = 0; i < 200; ++i) {
            const auto op = gen.next();
            ASSERT_TRUE(mm.pageTable().translate(op.vaddr).has_value())
                << spec.name << " generated unmapped address";
            ASSERT_GE(op.instrGap, 1u);
        }
    }
}

TEST(Suite, NamesAreUnique)
{
    std::set<std::string> names;
    for (const auto &w : allWorkloads())
        EXPECT_TRUE(names.insert(w.name).second)
            << "duplicate workload " << w.name;
}

} // namespace
} // namespace eat::workloads
