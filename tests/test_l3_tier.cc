/**
 * @file
 * The giant-reach L3 translation tier: unit tests for the cache-
 * resident and in-DRAM substrates, the simulated-outcome contracts the
 * tier must honor, and the tier's own paper-shape headline.
 *
 * Contract tests:
 *  - `--l3=none` runs are digest-identical to the pre-tier build for
 *    all six organizations (golden digests checked in under
 *    tests/golden/, recorded at the commit that introduced the tier);
 *  - the l3-accounting and provenance-reconciliation oracles are clean
 *    over a 200-scenario fuzzed campaign in which every scenario runs
 *    one of the two substrates;
 *  - the headline: an L3-backed 4KB+Lite organization beats RMM_Lite
 *    (the paper's best) on dynamic translation energy on the two
 *    workloads where ranges serve RMM_Lite worst (omnetpp, canneal —
 *    the paper's own exceptions, where RMM_Lite loses to TLB_PP),
 *    while staying within the 4KB baseline's TLB-miss-cycle band.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/config.hh"
#include "energy/cacti_lite.hh"
#include "l3/cache_tlb.hh"
#include "l3/dram_tlb.hh"
#include "qa/generator.hh"
#include "qa/oracles.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace eat
{
namespace
{

// --- CacheCapacityModel ----------------------------------------------

TEST(L3CapacityModel, ReservedShareIsAWayPartition)
{
    const energy::CactiLite cacti;
    l3::CacheTlbConfig cfg; // 64 Ki entries / 8 per line = 8 Ki lines
    const l3::CacheTlb tlb(cfg, cacti);
    const auto &cap = tlb.capacity();

    // 8 Ki reserved lines of a 16-way, 8 Ki-set LLC are one whole way.
    EXPECT_EQ(cap.totalLines(), 131072u);
    EXPECT_EQ(cap.reservedLines(), 8192u);
    EXPECT_EQ(cap.reservedWays(), 1u);
    EXPECT_DOUBLE_EQ(cap.reservedFraction(), 1.0 / 16.0);

    // The probe is charged for the partition's geometry, not the full
    // 16-way array: it must cost well under one full-LLC access and
    // well under one page-walk memory reference (~174 pJ), or the tier
    // could never pay for itself.
    const auto &coeff = cap.accessCoefficients();
    const auto full = cacti.estimate(energy::StructClass::L2Cache,
                                     131072, 16);
    EXPECT_LT(coeff.read, full.read / 10.0);
    EXPECT_LT(coeff.read, 60.0);
    EXPECT_GT(coeff.read, 1.0);

    // Leakage stays capacity-proportional against the whole LLC.
    EXPECT_DOUBLE_EQ(coeff.leakage, full.leakage / 16.0);
}

TEST(L3CapacityModel, OccupancyTracksLinesAndClamps)
{
    const energy::CactiLite cacti;
    l3::CacheTlbConfig cfg;
    cfg.entries = 1024;
    cfg.ways = 4;
    l3::CacheTlb tlb(cfg, cacti);

    EXPECT_EQ(tlb.capacity().occupiedLines(), 0u);
    for (unsigned i = 0; i < 64; ++i) {
        tlb.fill({/*vbase=*/Addr{i} << 12, /*pbase=*/Addr{i} << 12,
                  vm::PageSize::Size4K, 12, /*asid=*/0});
    }
    // 64 entries at 8 PTEs per line: 8 lines' worth of footprint.
    EXPECT_EQ(tlb.validEntries(), 64u);
    EXPECT_EQ(tlb.capacity().occupiedLines(), 8u);
    EXPECT_GE(tlb.capacity().peakOccupiedLines(), 8u);
    EXPECT_LE(tlb.capacity().occupiedLines(),
              tlb.capacity().reservedLines());
}

// --- CacheTlb --------------------------------------------------------

TEST(L3CacheTlb, FillThenLookupHitsAndInvalidates)
{
    const energy::CactiLite cacti;
    l3::CacheTlbConfig cfg;
    cfg.entries = 64;
    cfg.ways = 4;
    l3::CacheTlb tlb(cfg, cacti);

    const Addr va = 0x7f1234567000ull;
    EXPECT_FALSE(tlb.lookup(va, 0).hit);
    tlb.fill({va, 0x1000, vm::PageSize::Size4K, 12, 0});
    const auto hit = tlb.lookup(va, 0);
    ASSERT_TRUE(hit.hit);
    EXPECT_EQ(hit.entry.pbase, 0x1000u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 1u);

    EXPECT_EQ(tlb.invalidateRange(va, va + 0x1000, 0), 1u);
    EXPECT_FALSE(tlb.lookup(va, 0).hit);
    EXPECT_EQ(tlb.validEntries(), 0u);
}

TEST(L3CacheTlb, PromotePolicyAdmitsOnlyDuringMissStreaks)
{
    const energy::CactiLite cacti;
    l3::CacheTlbConfig cfg;
    cfg.entries = 64;
    cfg.ways = 4;
    cfg.policy = l3::L3InsertPolicy::PtePromote;
    cfg.promoteStreak = 3;
    l3::CacheTlb tlb(cfg, cacti);

    // Each lookup is one L2 miss; the streak builds until an L2 hit.
    tlb.lookup(0x1000, 0);
    tlb.lookup(0x2000, 0);
    EXPECT_FALSE(tlb.admitOnWalk()) << "streak 2 < promoteStreak 3";
    tlb.lookup(0x3000, 0);
    EXPECT_TRUE(tlb.admitOnWalk());
    tlb.noteL2Hit();
    tlb.lookup(0x4000, 0);
    EXPECT_FALSE(tlb.admitOnWalk()) << "an L2 hit must reset the streak";
}

// --- DramTlb ---------------------------------------------------------

TEST(L3DramTlb, TagCacheFiltersRepeatedMissesFromDram)
{
    const energy::CactiLite cacti;
    l3::DramTlbConfig cfg;
    cfg.entries = 4096;
    cfg.ways = 4;
    cfg.tagCacheEntries = 1024; // covers all 1024 sets
    l3::DramTlb tlb(cfg, cacti);

    const Addr va = 0x5555deadb000ull;
    const auto first = tlb.probe(va, 0);
    EXPECT_FALSE(first.hit);
    EXPECT_FALSE(first.tagCacheHit);
    EXPECT_TRUE(first.dramAccessed) << "a cold set must touch DRAM";

    const auto second = tlb.probe(va, 0);
    EXPECT_FALSE(second.hit);
    EXPECT_TRUE(second.tagCacheHit);
    EXPECT_FALSE(second.dramAccessed)
        << "the warmed tag cache must prove the miss without DRAM";
    EXPECT_EQ(tlb.dramAccesses(), 1u);
}

TEST(L3DramTlb, FillsHitAndInvalidationDistrustsTheTagCache)
{
    const energy::CactiLite cacti;
    l3::DramTlbConfig cfg;
    cfg.entries = 4096;
    cfg.ways = 4;
    cfg.tagCacheEntries = 1024;
    l3::DramTlb tlb(cfg, cacti);

    const Addr va = 0x600000042000ull;
    tlb.fill({va, 0x9000, vm::PageSize::Size4K, 12, 0});
    const auto hit = tlb.probe(va, 0);
    ASSERT_TRUE(hit.hit);
    EXPECT_EQ(hit.entry.pbase, 0x9000u);
    EXPECT_TRUE(hit.dramAccessed) << "a hit always reads the DRAM entry";

    tlb.invalidateAll();
    const auto after = tlb.probe(va, 0);
    EXPECT_FALSE(after.hit);
    EXPECT_FALSE(after.tagCacheHit)
        << "invalidation must distrust every cached tag";
}

// --- Lite epsilon relief ---------------------------------------------

TEST(L3Config, EnableL3RelaxesLiteEpsilonAgainstTheBackstop)
{
    auto relative = core::MmuConfig::make(core::MmuOrg::TlbLite);
    const double baseEps = relative.lite.epsilonRelative;
    relative.enableL3(l3::L3Mode::Cache);
    EXPECT_DOUBLE_EQ(relative.lite.epsilonRelative,
                     baseEps * relative.l3LiteEpsilonScale);

    auto absolute = core::MmuConfig::make(core::MmuOrg::RmmLite);
    const double baseMpki = absolute.lite.epsilonAbsoluteMpki;
    absolute.enableL3(l3::L3Mode::Dram);
    EXPECT_DOUBLE_EQ(absolute.lite.epsilonAbsoluteMpki,
                     baseMpki * absolute.l3LiteEpsilonScale);

    // No tier, no relief.
    auto off = core::MmuConfig::make(core::MmuOrg::TlbLite);
    off.enableL3(l3::L3Mode::None);
    EXPECT_DOUBLE_EQ(off.lite.epsilonRelative, baseEps);
}

// --- digest identity: --l3=none is the pre-tier simulator ------------

/** The exact run recorded in tests/golden/l3_none_digests.txt. */
sim::SimConfig
goldenConfig(core::MmuOrg org)
{
    sim::SimConfig cfg;
    cfg.workload = *workloads::findWorkload("mcf");
    cfg.mmu = core::MmuConfig::make(org);
    if (cfg.mmu.liteEnabled)
        cfg.mmu.lite.intervalInstructions = 10'000;
    cfg.simulateInstructions = 60'000;
    cfg.fastForwardInstructions = 5'000;
    cfg.seed = 7;
    return cfg;
}

TEST(L3DigestIdentity, NoneModeMatchesPreTierGoldenDigests)
{
    const std::string path =
        std::string(EAT_CORPUS_DIR) + "/../golden/l3_none_digests.txt";
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "missing golden digest file " << path;

    unsigned checked = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        const auto space = line.find(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string orgLabel = line.substr(0, space);
        const std::string golden = line.substr(space + 1);

        const core::MmuOrg org = [&orgLabel] {
            for (const auto o : core::allOrgs())
                if (core::orgName(o) == orgLabel)
                    return o;
            ADD_FAILURE() << "unknown org in golden file: " << orgLabel;
            return core::MmuOrg::Base4K;
        }();

        const auto result = sim::simulate(goldenConfig(org));
        EXPECT_EQ(qa::resultDigest(result), golden)
            << orgLabel
            << ": an --l3=none run diverged from the pre-tier "
               "simulator (the tier must be invisible when off)";
        ++checked;
    }
    EXPECT_EQ(checked, core::allOrgs().size())
        << "golden file must cover all six organizations";
}

TEST(L3DigestIdentity, ActiveTierChangesTheDigest)
{
    // Sanity for the test above: the digest must actually carry the
    // tier's counters when it runs, or identity would hold vacuously.
    auto cfg = goldenConfig(core::MmuOrg::Base4K);
    cfg.mmu.enableL3(l3::L3Mode::Cache);
    const auto digest = qa::resultDigest(sim::simulate(cfg));
    EXPECT_NE(digest.find(" l3"), std::string::npos)
        << "an active tier must print its counter section";
    EXPECT_NE(digest, qa::resultDigest(
                          sim::simulate(goldenConfig(core::MmuOrg::Base4K))));
}

// --- fuzzed oracle campaign over the tier ----------------------------

TEST(L3OracleCampaign, CleanOverTwoHundredScenariosWithTheTierForcedOn)
{
    // Every scenario runs one of the two substrates, alternating, on
    // top of whatever organization/window/faults the generator chose.
    // runOracles() applies the full oracle stack: l3-accounting,
    // energy conservation, nested-walk identities, and bit-exact
    // provenance reconciliation against the L3/DRAM meters.
    unsigned l3AccountingRuns = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
        auto s = qa::generateScenario(4242, i);
        if (!s.hasL3()) {
            s.l3Mode = (i % 2 == 0) ? "cache" : "dram";
            s.l3Policy.clear();
            s.l3PromoteStreak = 0;
        }
        // Cap the window: the oracles judge identities, not steady
        // state, and 200 full-size windows would dominate ctest.
        if (s.simInstructions > 60'000)
            s.simInstructions = 60'000;
        ASSERT_TRUE(s.toSimConfig().mmu.validate().ok()) << s.describe();

        const auto verdict = qa::runOracles(s);
        EXPECT_TRUE(verdict.passed())
            << "seed 4242 index " << i << " (" << s.describe() << "):\n"
            << (verdict.violations.empty() ? ""
                                           : verdict.violations.front());
        for (const auto &name : verdict.checked)
            l3AccountingRuns += name == "l3-accounting" ? 1 : 0;
    }
    EXPECT_GE(l3AccountingRuns, 200u)
        << "the l3-accounting oracle must have judged every scenario";
}

// --- the tier's paper shape ------------------------------------------

/** 4KB pages + TLB_Lite's Lite settings + the cache-resident tier:
 *  the Victima pitch (giant reach without huge pages), with the Lite
 *  epsilon relief the backstop buys. */
sim::SimConfig
l3BackedLiteConfig(const workloads::WorkloadSpec &spec)
{
    sim::SimConfig cfg;
    cfg.workload = spec;
    cfg.mmu = core::MmuConfig::make(core::MmuOrg::TlbLite);
    cfg.mmu.org = core::MmuOrg::Base4K; // no THP; reach comes from L3
    cfg.mmu.lite.intervalInstructions = 10'000;
    cfg.mmu.enableL3(l3::L3Mode::Cache);
    cfg.simulateInstructions = 2'000'000;
    cfg.fastForwardInstructions = 200'000;
    return cfg;
}

TEST(L3PaperShape, CacheTierWithLiteBeatsRmmLiteOnItsWeakWorkloads)
{
    // omnetpp and canneal are the paper's own RMM_Lite exceptions: the
    // many-small-allocation pair whose scattered ranges swamp a
    // 4-entry range TLB (Figure 10 shows TLB_PP beating RMM_Lite
    // there). The L3-backed 4KB+Lite organization must win on dynamic
    // translation energy on both, while keeping TLB-miss cycles within
    // a bounded band of the 4KB baseline. The band is 1.35x: with the
    // epsilon relief Lite runs the L1 near its floor geometry, and the
    // extra L1 misses each pay a 7-cycle L2 probe (~1.3x measured at a
    // forced 16x1 L1), never a walk — bounded latency bought the
    // energy, and the bound is asserted here.
    for (const std::string workload : {"omnetpp", "canneal"}) {
        // findWorkload returns the optional by value: copy the spec out
        // (a reference would dangle once the temporary dies).
        const auto spec = *workloads::findWorkload(workload);

        const auto l3Run = sim::simulate(l3BackedLiteConfig(spec));
        ASSERT_EQ(l3Run.check.mismatches(), 0u) << workload;
        ASSERT_GT(l3Run.stats.l3Probes, 0u) << workload;

        sim::SimConfig rmmCfg;
        rmmCfg.workload = spec;
        rmmCfg.mmu = core::MmuConfig::make(core::MmuOrg::RmmLite);
        rmmCfg.mmu.lite.intervalInstructions = 10'000;
        rmmCfg.simulateInstructions = 2'000'000;
        rmmCfg.fastForwardInstructions = 200'000;
        const auto rmmRun = sim::simulate(rmmCfg);

        sim::SimConfig flatCfg;
        flatCfg.workload = spec;
        flatCfg.mmu = core::MmuConfig::make(core::MmuOrg::Base4K);
        flatCfg.simulateInstructions = 2'000'000;
        flatCfg.fastForwardInstructions = 200'000;
        const auto flatRun = sim::simulate(flatCfg);

        const double l3Energy = l3Run.energyPerKiloInstr();
        const double rmmEnergy = rmmRun.energyPerKiloInstr();
        std::printf("%-8s TLB_L3$ %8.1f pJ/kinstr (%5.1f%% hits)  "
                    "RMM_Lite %8.1f   miss-cyc %8.1f vs 4KB %8.1f\n",
                    workload.c_str(), l3Energy,
                    100.0 * double(l3Run.stats.l3Hits) /
                        double(l3Run.stats.l3Probes),
                    rmmEnergy, l3Run.missCyclesPerKiloInstr(),
                    flatRun.missCyclesPerKiloInstr());

        EXPECT_LT(l3Energy, rmmEnergy)
            << workload << ": the L3-backed Lite organization must "
            << "beat RMM_Lite on dynamic translation energy";
        EXPECT_LT(l3Run.missCyclesPerKiloInstr(),
                  flatRun.missCyclesPerKiloInstr() * 1.35)
            << workload << ": the tier may not buy that energy with "
            << "TLB-miss cycles beyond the 4KB baseline's band";
    }
}

} // namespace
} // namespace eat
