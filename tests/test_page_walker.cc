/**
 * @file
 * Direct tests for the hardware page-table walker: translation
 * correctness per leaf size, walk cost following the paging-structure
 * caches, and context-switch retargeting via setPageTable() — the
 * entry point the multicore scheduler leans on.
 */

#include <gtest/gtest.h>

#include "tlb/mmu_cache.hh"
#include "tlb/page_walker.hh"
#include "vm/page_table.hh"

namespace eat::tlb
{
namespace
{

using vm::PageSize;

TEST(PageWalker, ResolvesA4KLeafWithItsOffset)
{
    vm::PageTable pt;
    pt.map(0x2000'0000, 0x9000'0000, PageSize::Size4K);
    MmuCache cache;
    PageWalker walker(pt, cache);

    const auto r = walker.walk(0x2000'0abc);
    EXPECT_EQ(r.translation.vbase, 0x2000'0000u);
    EXPECT_EQ(r.translation.pbase, 0x9000'0000u);
    EXPECT_EQ(r.translation.size, PageSize::Size4K);
    // Cold caches: all four levels come from memory.
    EXPECT_EQ(r.cache.memRefs, 4u);
}

TEST(PageWalker, WalkCostFollowsLeafDepth)
{
    vm::PageTable pt;
    pt.map(0x4000'0000, 0x8000'0000, PageSize::Size2M);
    // Own PML4 region (512 GB apart) so the first walk's PML4 fill
    // cannot shorten the second cold walk.
    pt.map(0x80'0000'0000, 0x2'0000'0000, PageSize::Size1G);
    MmuCache cache;
    PageWalker walker(pt, cache);

    // A 2 MB leaf lives at the PDE level: a cold walk needs 3 refs.
    EXPECT_EQ(walker.walk(0x4000'1234).cache.memRefs, 3u);
    // A 1 GB leaf lives at the PDPTE level: a cold walk needs 2 refs.
    EXPECT_EQ(walker.walk(0x80'0050'0000).cache.memRefs, 2u);
}

TEST(PageWalker, WarmCachesShortenTheWalk)
{
    vm::PageTable pt;
    pt.map(0x2000'0000, 0x9000'0000, PageSize::Size4K);
    pt.map(0x2000'1000, 0x9000'1000, PageSize::Size4K);
    MmuCache cache;
    PageWalker walker(pt, cache);

    ASSERT_EQ(walker.walk(0x2000'0000).cache.memRefs, 4u);
    // Same 2 MB region: the PDE entry covers it, one leaf fetch left.
    EXPECT_EQ(walker.walk(0x2000'1000).cache.memRefs, 1u);
}

TEST(PageWalker, SetPageTableRetargetsAnotherAddressSpace)
{
    // Two address spaces map the same vaddr to different frames — the
    // situation every multicore context switch creates.
    vm::PageTable a, b;
    a.map(0x2000'0000, 0x9000'0000, PageSize::Size4K);
    b.map(0x2000'0000, 0xa000'0000, PageSize::Size4K);
    MmuCache cache;
    PageWalker walker(a, cache);

    EXPECT_EQ(walker.walk(0x2000'0000).translation.pbase, 0x9000'0000u);
    walker.setPageTable(b);
    EXPECT_EQ(walker.walk(0x2000'0000).translation.pbase, 0xa000'0000u);
}

TEST(PageWalker, PanicsOnUnmappedMemory)
{
    vm::PageTable pt;
    pt.map(0x2000'0000, 0x9000'0000, PageSize::Size4K);
    MmuCache cache;
    PageWalker walker(pt, cache);

    EXPECT_THROW(walker.walk(0x7000'0000), std::logic_error);
}

} // namespace
} // namespace eat::tlb
