/**
 * @file
 * Tests for the energy substrate: the embedded Table-2 coefficients,
 * the CactiLite extrapolation model, and the accounting meters.
 */

#include <gtest/gtest.h>

#include "energy/account.hh"
#include "energy/cacti_lite.hh"
#include "energy/coefficients.hh"

namespace eat::energy
{
namespace
{

TEST(Table2, PublishesThirteenAnchors)
{
    EXPECT_EQ(table2AnchorCount(), 13u);
}

TEST(Table2, ExactPublishedValues)
{
    // Spot-check the values the paper's headline arithmetic uses.
    auto l14k = table2(StructClass::L1Tlb4K, 64, 4);
    ASSERT_TRUE(l14k.has_value());
    EXPECT_DOUBLE_EQ(l14k->read, 5.865);
    EXPECT_DOUBLE_EQ(l14k->write, 6.858);
    EXPECT_DOUBLE_EQ(l14k->leakage, 0.3632);

    auto l14kDown = table2(StructClass::L1Tlb4K, 16, 1);
    ASSERT_TRUE(l14kDown.has_value());
    EXPECT_DOUBLE_EQ(l14kDown->read, 0.697);

    auto range = table2(StructClass::L1RangeTlb, 4, 0);
    ASSERT_TRUE(range.has_value());
    EXPECT_DOUBLE_EQ(range->read, 1.806);
    EXPECT_DOUBLE_EQ(range->write, 1.172);

    auto l2 = table2(StructClass::L2Tlb4K, 512, 4);
    ASSERT_TRUE(l2.has_value());
    EXPECT_DOUBLE_EQ(l2->write, 12.379);

    auto cache = table2(StructClass::L1Cache, 512, 8);
    ASSERT_TRUE(cache.has_value());
    EXPECT_DOUBLE_EQ(cache->read, 174.171);
}

TEST(Table2, UnknownGeometryIsEmpty)
{
    EXPECT_FALSE(table2(StructClass::L1Tlb4K, 128, 4).has_value());
    EXPECT_FALSE(table2(StructClass::L1Tlb4K, 64, 2).has_value());
    EXPECT_FALSE(table2(StructClass::L1Tlb1G, 4, 0).has_value());
}

TEST(Table2, EveryClassHasAName)
{
    for (auto cls : {StructClass::L1Tlb4K, StructClass::L1Tlb2M,
                     StructClass::L1Tlb1G, StructClass::L1RangeTlb,
                     StructClass::L2Tlb4K, StructClass::L2RangeTlb,
                     StructClass::MmuPde, StructClass::MmuPdpte,
                     StructClass::MmuPml4, StructClass::L1Cache,
                     StructClass::L2Cache}) {
        EXPECT_FALSE(structClassName(cls).empty());
        EXPECT_NE(structClassName(cls), "unknown");
    }
}

TEST(CactiLite, AnchorsAreExact)
{
    CactiLite model;
    // Every downsized L1 TLB configuration the paper published must be
    // returned verbatim (the downsizing energy model of §5).
    const struct
    {
        StructClass cls;
        unsigned entries, ways;
        double read;
    } anchors[] = {
        {StructClass::L1Tlb4K, 64, 4, 5.865},
        {StructClass::L1Tlb4K, 32, 2, 1.881},
        {StructClass::L1Tlb4K, 16, 1, 0.697},
        {StructClass::L1Tlb2M, 32, 4, 4.801},
        {StructClass::L1Tlb2M, 16, 2, 1.536},
        {StructClass::L1Tlb2M, 8, 1, 0.568},
        {StructClass::L2RangeTlb, 32, 0, 3.306},
    };
    for (const auto &a : anchors) {
        EXPECT_TRUE(CactiLite::isAnchor(a.cls, a.entries, a.ways));
        EXPECT_DOUBLE_EQ(model.estimate(a.cls, a.entries, a.ways).read,
                         a.read);
    }
}

TEST(CactiLite, ExtrapolationIsMonotonicInWays)
{
    CactiLite model;
    // Same sets, more ways -> strictly more energy.
    double prev = 0.0;
    for (unsigned ways : {1u, 2u, 4u, 8u}) {
        const auto e =
            model.estimate(StructClass::L1Tlb4K, 16 * ways, ways);
        EXPECT_GT(e.read, prev);
        prev = e.read;
    }
}

TEST(CactiLite, ExtrapolationIsMonotonicInEntriesForCam)
{
    CactiLite model;
    double prev = 0.0;
    for (unsigned entries : {2u, 4u, 8u, 16u, 32u, 64u}) {
        const auto e =
            model.estimate(StructClass::L2RangeTlb, entries, 0);
        EXPECT_GT(e.read, prev);
        prev = e.read;
    }
}

TEST(CactiLite, UnpublishedGeometryInterpolatesNearAnchors)
{
    CactiLite model;
    // A 128-entry 4-way L1-4KB TLB must cost more than the 64-entry
    // 4-way anchor but stay within an order of magnitude.
    const auto e = model.estimate(StructClass::L1Tlb4K, 128, 4);
    EXPECT_GT(e.read, 5.865);
    EXPECT_LT(e.read, 58.65);
}

TEST(CactiLite, L1GbTlbBorrowsPdpteAnchor)
{
    CactiLite model;
    const auto e = model.estimate(StructClass::L1Tlb1G, 4, 0);
    EXPECT_DOUBLE_EQ(e.read, 0.766); // the 4-entry fully assoc. anchor
}

TEST(CactiLite, L2CacheReadCostsMoreThanL1)
{
    CactiLite model;
    EXPECT_GT(model.l2CacheReadEnergy(), 174.171);
    // sqrt(8) scaling of the 32 KB -> 256 KB capacity ratio.
    EXPECT_NEAR(model.l2CacheReadEnergy(), 174.171 * 2.8284, 0.1);
}

TEST(CactiLite, LeakageScalesLinearly)
{
    CactiLite model;
    const auto half = model.estimate(StructClass::L2RangeTlb, 16, 0);
    const auto full = model.estimate(StructClass::L2RangeTlb, 32, 0);
    EXPECT_NEAR(half.leakage * 2.0, full.leakage, 1e-9);
}

TEST(CactiLite, RejectsBadGeometry)
{
    CactiLite model;
    EXPECT_THROW(model.estimate(StructClass::L1Tlb4K, 0, 4),
                 std::logic_error);
    EXPECT_THROW(model.estimate(StructClass::L1Tlb4K, 63, 4),
                 std::logic_error);
}

TEST(EnergyMeter, AccumulatesReadsAndWrites)
{
    EnergyMeter m;
    m.chargeRead(2.0);
    m.chargeRead(2.0);
    m.chargeWrite(3.0);
    EXPECT_DOUBLE_EQ(m.readEnergy(), 4.0);
    EXPECT_DOUBLE_EQ(m.writeEnergy(), 3.0);
    EXPECT_DOUBLE_EQ(m.total(), 7.0);
    EXPECT_EQ(m.reads(), 2u);
    EXPECT_EQ(m.writes(), 1u);
    m.reset();
    EXPECT_DOUBLE_EQ(m.total(), 0.0);
    EXPECT_EQ(m.reads(), 0u);
}

TEST(EnergyBreakdown, TotalSumsCategories)
{
    EnergyBreakdown b;
    b.l1Tlb = 1.0;
    b.l2Tlb = 2.0;
    b.mmuCache = 3.0;
    b.pageWalkMem = 4.0;
    b.rangeWalkMem = 5.0;
    EXPECT_DOUBLE_EQ(b.total(), 15.0);
}

} // namespace
} // namespace eat::energy
