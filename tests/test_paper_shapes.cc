/**
 * @file
 * Fast paper-shape regression: Figure 10's qualitative orderings on a
 * reduced mini-grid.
 *
 * EXPERIMENTS.md pins the full 20M-instruction sweep; re-running that
 * per commit is half an hour of CPU. This suite re-checks the *shape*
 * of the headline figure in seconds: every workload runs 500k measured
 * instructions (after a 50k fast-forward) with Lite's interval scaled
 * down by the same factor (25k instead of 1M), preserving the number of
 * resize decisions per run. Absolute energies differ from the full
 * sweep, so the assertions are orderings and coarse ratio bands, not
 * point values — loose enough to survive model tuning, tight enough
 * that a sign error in an energy coefficient or a Lite decision
 * regression flips them.
 */

#include <array>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace eat
{
namespace
{

constexpr std::uint64_t kInstructions = 500'000;
constexpr std::uint64_t kFastForward = 50'000;
/** Scaled with the window so Lite still makes ~50 resize decisions
 *  per run; at the full sweep's 1M interval a 500k window would never
 *  trigger a single decision and TLB_Lite would be THP exactly. */
constexpr std::uint64_t kLiteInterval = 10'000;

/** Energy per kilo-instruction for every (workload, org) cell. */
class PaperShapes : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        if (!grid_.empty())
            return;
        for (const auto &spec : workloads::tlbIntensiveSuite()) {
            for (const auto org : core::allOrgs()) {
                sim::SimConfig cfg;
                cfg.workload = spec;
                cfg.mmu = core::MmuConfig::make(org);
                if (cfg.mmu.liteEnabled)
                    cfg.mmu.lite.intervalInstructions = kLiteInterval;
                cfg.simulateInstructions = kInstructions;
                cfg.fastForwardInstructions = kFastForward;
                const auto result = sim::simulate(cfg);
                ASSERT_EQ(result.check.mismatches(), 0u)
                    << spec.name << " x " << core::orgName(org);
                grid_[{spec.name, org}] = result.energyPerKiloInstr();
            }
        }
    }

    static double
    energy(const std::string &workload, core::MmuOrg org)
    {
        const auto it = grid_.find({workload, org});
        EXPECT_NE(it, grid_.end()) << workload;
        return it == grid_.end() ? 0.0 : it->second;
    }

    /** Normalized to the 4KB configuration, Figure 10's unit. */
    static double
    normalized(const std::string &workload, core::MmuOrg org)
    {
        return energy(workload, org) /
               energy(workload, core::MmuOrg::Base4K);
    }

    static double
    averageNormalized(core::MmuOrg org)
    {
        double sum = 0.0;
        const auto &suite = workloads::tlbIntensiveSuite();
        for (const auto &spec : suite)
            sum += normalized(spec.name, org);
        return sum / static_cast<double>(suite.size());
    }

  private:
    static std::map<std::pair<std::string, core::MmuOrg>, double> grid_;
};

std::map<std::pair<std::string, core::MmuOrg>, double> PaperShapes::grid_;

TEST_F(PaperShapes, PrintMiniFigure10)
{
    // The mini-grid itself, for humans debugging a shape failure.
    std::printf("%-12s", "workload");
    for (const auto org : core::allOrgs())
        std::printf(" %9s", std::string(core::orgName(org)).c_str());
    std::printf("\n");
    for (const auto &spec : workloads::tlbIntensiveSuite()) {
        std::printf("%-12s", spec.name.c_str());
        for (const auto org : core::allOrgs())
            std::printf(" %9.3f", normalized(spec.name, org));
        std::printf("\n");
    }
}

TEST_F(PaperShapes, LiteSavesEnergyOverThpWhereverItEngages)
{
    // Figure 10: way-disabling improves on THP (TLB_Lite -26% on
    // average in the full sweep). In this reduced window Lite rightly
    // refuses to disable ways for mcf — the walk-bound workload whose
    // misses keep every way justified — so mcf only gets the
    // no-harm bound; the other seven must strictly save.
    for (const auto &spec : workloads::tlbIntensiveSuite()) {
        const double lite = energy(spec.name, core::MmuOrg::TlbLite);
        const double thp = energy(spec.name, core::MmuOrg::Thp);
        EXPECT_LE(lite, thp * 1.01)
            << spec.name << ": Lite must never cost more than its "
            << "sampling overhead over THP";
        if (spec.name != "mcf") {
            EXPECT_LT(lite, thp * 0.995)
                << spec.name << ": Lite must save energy over THP";
        }
    }
}

TEST_F(PaperShapes, RmmLiteBeatsTlbPpExceptOnManyRangeWorkloads)
{
    // Figure 10: RMM_Lite wins against the prefetching TLB_PP on every
    // single-arena workload; omnetpp and canneal (the many-small-
    // allocation pair that swamps a 4-entry range TLB) are the paper's
    // own exceptions, so no direction is asserted for them.
    for (const auto &spec : workloads::tlbIntensiveSuite()) {
        if (spec.name == "omnetpp" || spec.name == "canneal")
            continue;
        EXPECT_LT(energy(spec.name, core::MmuOrg::RmmLite),
                  energy(spec.name, core::MmuOrg::TlbPP))
            << spec.name << ": RMM_Lite must beat TLB_PP";
    }
}

TEST_F(PaperShapes, RmmLiteBigWinsOnWalkBoundPair)
{
    // Paper: "more than 80% [savings] for mcf and cactusADM", the two
    // page-walk-bound workloads, relative to the 4KB baseline.
    for (const std::string workload : {"mcf", "cactusADM"}) {
        const double saving =
            1.0 - normalized(workload, core::MmuOrg::RmmLite);
        EXPECT_GT(saving, 0.80)
            << workload << ": RMM_Lite must save >80% vs 4KB";
    }
}

TEST_F(PaperShapes, AverageOrderingMatchesFigure10)
{
    // Full-sweep averages (normalized to 4KB): RMM_Lite 0.274 <
    // TLB_PP 0.461 < TLB_Lite 0.566 < THP 0.758 < 1. The mini-grid
    // must preserve the strict ordering.
    const double rmmLite = averageNormalized(core::MmuOrg::RmmLite);
    const double tlbPp = averageNormalized(core::MmuOrg::TlbPP);
    const double tlbLite = averageNormalized(core::MmuOrg::TlbLite);
    const double thp = averageNormalized(core::MmuOrg::Thp);
    EXPECT_LT(rmmLite, tlbPp);
    EXPECT_LT(tlbPp, tlbLite);
    EXPECT_LT(tlbLite, thp);
    EXPECT_LT(thp, 1.0);
}

TEST(PaperShapesProvenance, Fig10OrderingReproducedFromTracedRuns)
{
    // The same headline ordering must fall out of the *provenance*
    // pipeline: trace a THP run and an RMM_Lite run, hand both streams
    // to eatreport --diff, and read the Figure-10 ratio it computes
    // from the traced events alone. mcf is walk-bound, so RMM_Lite
    // must land far below THP (full sweep: >80% savings vs 4KB).
    const std::string pathA = ::testing::TempDir() + "/fig10_thp.jsonl";
    const std::string pathB = ::testing::TempDir() + "/fig10_rmm.jsonl";
    for (const auto &[org, path] :
         {std::pair{core::MmuOrg::Thp, pathA},
          std::pair{core::MmuOrg::RmmLite, pathB}}) {
        sim::SimConfig cfg;
        cfg.workload = *workloads::findWorkload("mcf");
        cfg.mmu = core::MmuConfig::make(org);
        if (cfg.mmu.liteEnabled)
            cfg.mmu.lite.intervalInstructions = kLiteInterval;
        cfg.simulateInstructions = 300'000;
        cfg.fastForwardInstructions = kFastForward;
        cfg.provenancePath = path;
        sim::simulate(cfg);
    }

    const std::string cmd = std::string(EAT_EATREPORT_PATH) +
                            " --prov=" + pathA + " --diff=" + pathB +
                            " 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string output;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, pipe)) > 0)
        output.append(buffer, n);
    const int status = pclose(pipe);
    std::remove(pathA.c_str());
    std::remove(pathB.c_str());
    ASSERT_EQ(status, 0) << output;

    const auto pos = output.find("ratio=");
    ASSERT_NE(pos, std::string::npos) << output;
    const double ratio = std::strtod(output.c_str() + pos + 6, nullptr);
    EXPECT_GT(ratio, 0.0) << output;
    EXPECT_LT(ratio, 0.6)
        << "RMM_Lite must show Figure 10's big win over THP on the "
        << "walk-bound mcf\n"
        << output;
}

TEST_F(PaperShapes, ThpHelpsOnlyTheWalkBoundPairMuch)
{
    // Figure 10's THP column: the walk-bound pair (cactusADM, mcf)
    // gains >40%, everyone else gains little; canneal is the largest
    // energy *increase* of the suite.
    EXPECT_LT(normalized("mcf", core::MmuOrg::Thp), 0.6);
    EXPECT_LT(normalized("cactusADM", core::MmuOrg::Thp), 0.7);
    double cannealThp = normalized("canneal", core::MmuOrg::Thp);
    for (const auto &spec : workloads::tlbIntensiveSuite()) {
        EXPECT_LE(normalized(spec.name, core::MmuOrg::Thp),
                  cannealThp + 1e-9)
            << spec.name << ": canneal must be THP's worst case";
    }
}

} // namespace
} // namespace eat
