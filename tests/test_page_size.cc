/**
 * @file
 * Tests for the page-size geometry helpers and TLB entry arithmetic.
 */

#include <gtest/gtest.h>

#include "tlb/tlb_entry.hh"
#include "vm/page_size.hh"

namespace eat::vm
{
namespace
{

TEST(PageSize, ShiftsAndBytes)
{
    EXPECT_EQ(pageShift(PageSize::Size4K), 12u);
    EXPECT_EQ(pageShift(PageSize::Size2M), 21u);
    EXPECT_EQ(pageShift(PageSize::Size1G), 30u);
    EXPECT_EQ(pageBytes(PageSize::Size4K), 4096u);
    EXPECT_EQ(pageBytes(PageSize::Size2M), 2_MiB);
    EXPECT_EQ(pageBytes(PageSize::Size1G), 1_GiB);
}

TEST(PageSize, BaseAndOffset)
{
    const Addr a = 0x1234'5678;
    for (auto size : {PageSize::Size4K, PageSize::Size2M,
                      PageSize::Size1G}) {
        EXPECT_EQ(pageBase(a, size) + pageOffset(a, size), a);
        EXPECT_EQ(pageBase(a, size) % pageBytes(size), 0u);
        EXPECT_LT(pageOffset(a, size), pageBytes(size));
    }
}

TEST(PageSize, Names)
{
    EXPECT_EQ(pageSizeName(PageSize::Size4K), "4KB");
    EXPECT_EQ(pageSizeName(PageSize::Size2M), "2MB");
    EXPECT_EQ(pageSizeName(PageSize::Size1G), "1GB");
}

TEST(TlbEntry, CoversAndTranslates)
{
    const auto e = tlb::makePageEntry(0x12345678, 0xA0000000,
                                      PageSize::Size2M);
    EXPECT_EQ(e.vbase, alignDown(0x12345678, 2_MiB));
    EXPECT_EQ(e.shift, 21u);
    EXPECT_TRUE(e.covers(0x12345678));
    EXPECT_TRUE(e.covers(e.vbase));
    EXPECT_TRUE(e.covers(e.vbase + 2_MiB - 1));
    EXPECT_FALSE(e.covers(e.vbase + 2_MiB));
    EXPECT_FALSE(e.covers(e.vbase - 1));
    EXPECT_EQ(e.paddr(e.vbase + 12345), 0xA0000000u + 12345);
}

TEST(TlbEntry, MakePageEntryPerSize)
{
    for (auto size : {PageSize::Size4K, PageSize::Size2M,
                      PageSize::Size1G}) {
        const auto e = tlb::makePageEntry(3_GiB + 12345, 8_GiB, size);
        EXPECT_EQ(e.size, size);
        EXPECT_EQ(e.shift, pageShift(size));
        EXPECT_EQ(e.vbase, pageBase(3_GiB + 12345, size));
    }
}

} // namespace
} // namespace eat::vm
