/**
 * @file
 * Tests for the MMU datapath: per-organization structure wiring, the
 * static enable masks, hit attribution, the cycle model, and — most
 * importantly — hand-computed dynamic-energy traces validating the
 * Table-3 accounting against the Table-2 coefficients.
 */

#include <gtest/gtest.h>

#include "core/mmu.hh"
#include "vm/page_table.hh"
#include "vm/range_table.hh"

namespace eat::core
{
namespace
{

using vm::PageSize;

constexpr double kTol = 1e-9;

class MmuTest : public ::testing::Test
{
  protected:
    vm::PageTable pt;
    vm::RangeTable rt;
};

TEST_F(MmuTest, Base4KHandComputedEnergy)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    Mmu mmu(MmuConfig::make(MmuOrg::Base4K), pt, nullptr);

    // Access 1: cold miss everywhere -> full walk.
    mmu.access(0x1234);
    // Access 2: L1 hit.
    mmu.access(0x1678);
    mmu.tick(1000);

    const auto &s = mmu.stats();
    EXPECT_EQ(s.memOps, 2u);
    EXPECT_EQ(s.l1Hits, 1u);
    EXPECT_EQ(s.l1Misses, 1u);
    EXPECT_EQ(s.l2Misses, 1u);
    EXPECT_EQ(s.walkMemRefs, 4u);
    EXPECT_EQ(s.l1MissCycles, 7u);
    EXPECT_EQ(s.walkCycles, 50u);
    EXPECT_EQ(s.tlbMissCycles(), 57u);

    const auto report = mmu.energyReport();
    const auto &b = report.breakdown;
    // Two L1-4KB reads plus one fill.
    EXPECT_NEAR(b.l1Tlb, 2 * 5.865 + 6.858, kTol);
    // One L2 read plus one fill.
    EXPECT_NEAR(b.l2Tlb, 8.078 + 12.379, kTol);
    // Three parallel MMU-cache reads plus three cold fills.
    EXPECT_NEAR(b.mmuCache,
                (1.824 + 0.766 + 0.473) + (2.281 + 0.279 + 0.158), kTol);
    // Four page-walk references hitting the L1 data cache.
    EXPECT_NEAR(b.pageWalkMem, 4 * 174.171, kTol);
    EXPECT_NEAR(b.rangeWalkMem, 0.0, kTol);
}

TEST_F(MmuTest, ThpMaskKeeps2MTlbDarkUntilFirst2MFill)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(4_MiB, 16_MiB, PageSize::Size2M);
    Mmu mmu(MmuConfig::make(MmuOrg::Thp), pt, nullptr);

    // 4 KB accesses never enable the L1-2MB TLB.
    mmu.access(0x1234);
    mmu.access(0x1678);
    EXPECT_FALSE(mmu.l1Tlb2MEnabled());

    // First 2 MB access: walk, fill, mask lifts.
    mmu.access(4_MiB + 5);
    EXPECT_TRUE(mmu.l1Tlb2MEnabled());
    const auto afterWalk = mmu.energyReport();

    // Next 2 MB access hits the L1-2MB TLB; both L1s are read.
    mmu.access(4_MiB + 0x2000);
    const auto &s = mmu.stats();
    EXPECT_EQ(s.hits(HitSource::L1Page2M), 1u);
    const auto report = mmu.energyReport();
    EXPECT_NEAR(report.breakdown.l1Tlb - afterWalk.breakdown.l1Tlb,
                5.865 + 4.801, kTol);
    EXPECT_EQ(s.l1Hits, 2u);
}

TEST_F(MmuTest, Walk2MCostsThreeRefsColdAndSkipsL2Fill)
{
    pt.map(4_MiB, 16_MiB, PageSize::Size2M);
    Mmu mmu(MmuConfig::make(MmuOrg::Thp), pt, nullptr);
    mmu.access(4_MiB);
    const auto &s = mmu.stats();
    EXPECT_EQ(s.walkMemRefs, 3u); // PML4E, PDPTE, leaf PDE
    // The L2 TLB holds only 4 KB entries: a subsequent L1-2MB miss
    // must walk again rather than hit the L2.
    mmu.l1Tlb2M()->invalidateAll();
    mmu.access(4_MiB);
    EXPECT_EQ(mmu.stats().l2Misses, 2u);
    EXPECT_EQ(mmu.stats().l2Hits, 0u);
}

TEST_F(MmuTest, Base4KConfigHasNoRangeHardware)
{
    Mmu mmu(MmuConfig::make(MmuOrg::Base4K), pt, nullptr);
    EXPECT_EQ(mmu.l1RangeTlb(), nullptr);
    EXPECT_EQ(mmu.l2RangeTlb(), nullptr);
    EXPECT_EQ(mmu.lite(), nullptr);
    EXPECT_NE(mmu.l1Tlb2M(), nullptr); // hardware exists, stays masked
}

TEST_F(MmuTest, RangeConfigsRequireRangeTable)
{
    EXPECT_THROW(Mmu(MmuConfig::make(MmuOrg::Rmm), pt, nullptr),
                 std::logic_error);
}

TEST_F(MmuTest, RmmBackgroundRangeWalkFillsL2RangeOnly)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(0x2000, 0x201000, PageSize::Size4K);
    rt.insert({0x1000, 0x3000, 0x200000});
    Mmu mmu(MmuConfig::make(MmuOrg::Rmm), pt, &rt);

    // Cold miss: page walk plus background range walk.
    mmu.access(0x1234);
    const auto &s = mmu.stats();
    EXPECT_EQ(s.rangeWalks, 1u);
    EXPECT_EQ(s.rangeWalkMemRefs, 1u);
    EXPECT_EQ(s.walkCycles, 50u); // the range walk adds no cycles
    EXPECT_TRUE(mmu.l2RangeEnabled());
    EXPECT_EQ(mmu.l2RangeTlb()->validCount(), 1u);
    const auto cold = mmu.energyReport();
    EXPECT_NEAR(cold.breakdown.rangeWalkMem, 174.171, kTol);

    // Second page of the range: L1 miss, L2-range hit -> the page entry
    // is copied into the L1-4KB TLB; no walk.
    mmu.access(0x2010);
    EXPECT_EQ(mmu.stats().l2Misses, 1u);
    EXPECT_EQ(mmu.stats().hits(HitSource::L2Range), 1u);
    EXPECT_EQ(mmu.stats().l1MissCycles, 14u);

    // Third access to that page: now an L1-4KB hit.
    mmu.access(0x2020);
    EXPECT_EQ(mmu.stats().hits(HitSource::L1Page4K), 1u);
}

TEST_F(MmuTest, RmmLiteL1RangeHitPath)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(0x2000, 0x201000, PageSize::Size4K);
    rt.insert({0x1000, 0x3000, 0x200000});
    Mmu mmu(MmuConfig::make(MmuOrg::RmmLite), pt, &rt);

    mmu.access(0x1234); // cold: walk + range walk fills L2-range
    mmu.access(0x2010); // L2-range hit: fills L1-range + L1-4KB
    EXPECT_TRUE(mmu.l1RangeEnabled());
    EXPECT_EQ(mmu.l1RangeTlb()->validCount(), 1u);

    // Any address of the range now hits the L1-range TLB, even pages
    // never touched before (the arbitrarily-large-reach property).
    mmu.access(0x1800);
    EXPECT_EQ(mmu.stats().hits(HitSource::L1Range), 1u);
    EXPECT_EQ(mmu.stats().l1Hits, 1u);

    // Energy of that hit: L1-range read + L1-4KB read (both searched
    // in parallel; the L1-2MB TLB is masked, no 2 MB pages exist).
    const auto r = mmu.energyReport();
    double l1RangeRead = 0.0, l1RangeWrite = 0.0;
    for (const auto &row : r.structs) {
        if (row.name == "L1-range TLB") {
            l1RangeRead = row.readEnergy;
            l1RangeWrite = row.writeEnergy;
        }
    }
    EXPECT_NEAR(l1RangeRead, 1.806, kTol);  // one lookup
    EXPECT_NEAR(l1RangeWrite, 1.172, kTol); // one fill
}

TEST_F(MmuTest, TlbPpUsesSingleMixedStructures)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(4_MiB, 16_MiB, PageSize::Size2M);
    Mmu mmu(MmuConfig::make(MmuOrg::TlbPP), pt, nullptr);
    EXPECT_EQ(mmu.l1Tlb2M(), nullptr); // no separate 2 MB TLB

    mmu.access(0x1234);    // 4 KB walk, fills mixed L1+L2
    mmu.access(4_MiB + 5); // 2 MB walk, fills mixed L1+L2
    mmu.access(0x1678);    // mixed L1 hit (4 KB entry)
    mmu.access(4_MiB + 9); // mixed L1 hit (2 MB entry)

    const auto &s = mmu.stats();
    EXPECT_EQ(s.l1Hits, 2u);
    EXPECT_EQ(s.hits(HitSource::L1Page4K), 2u); // attributed to mixed L1

    // Exactly one structure read per lookup: 4 reads total at the
    // 64-entry 4-way coefficient.
    const auto r = mmu.energyReport();
    double mixedReads = 0.0;
    for (const auto &row : r.structs) {
        if (row.name == "L1-mixed TLB")
            mixedReads = row.readEnergy;
    }
    EXPECT_NEAR(mixedReads, 4 * 5.865, kTol);

    // The mixed L2 holds the 2 MB entry: after flushing L1, the 2 MB
    // access hits at L2 instead of walking (unlike the baseline).
    mmu.l1Tlb4K().invalidateAll();
    mmu.access(4_MiB + 64);
    EXPECT_EQ(mmu.stats().hits(HitSource::L2Page), 1u);
    EXPECT_EQ(mmu.stats().l2Misses, 2u);
}

TEST_F(MmuTest, LiteDownsizingScalesLookupEnergy)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    Mmu mmu(MmuConfig::make(MmuOrg::TlbLite), pt, nullptr);

    mmu.access(0x1234); // cold fill
    const auto before = mmu.energyReport().breakdown.l1Tlb;
    mmu.access(0x1240);
    const auto fullWayRead =
        mmu.energyReport().breakdown.l1Tlb - before;
    EXPECT_NEAR(fullWayRead, 5.865, kTol);

    // An interval with no utility: Lite downsizes to 1 way.
    mmu.tick(1'000'000);
    EXPECT_EQ(mmu.l1Tlb4K().activeWays(), 1u);

    // The same lookup now costs the 16-entry direct-mapped energy (the
    // entry sat in way 0 and survived the downsizing).
    const auto mid = mmu.energyReport().breakdown.l1Tlb;
    mmu.access(0x1240);
    EXPECT_EQ(mmu.l1Tlb4K().activeWays(), 1u);
    const auto downRead = mmu.energyReport().breakdown.l1Tlb - mid;
    EXPECT_NEAR(downRead, 0.697, kTol);
    EXPECT_EQ(mmu.stats().l1Hits, 2u); // accesses 2 and 3 hit


    // The way-activity histogram recorded both operating points.
    EXPECT_EQ(mmu.stats().l1WayLookups4K.bucketCount(2), 2u);
    EXPECT_EQ(mmu.stats().l1WayLookups4K.bucketCount(0), 1u);
}

TEST_F(MmuTest, TickDrivesLiteIntervals)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    Mmu mmu(MmuConfig::make(MmuOrg::TlbLite), pt, nullptr);
    mmu.tick(999'999);
    EXPECT_EQ(mmu.lite()->stats().intervals, 0u);
    mmu.tick(1);
    EXPECT_EQ(mmu.lite()->stats().intervals, 1u);
    mmu.tick(3'000'000);
    EXPECT_EQ(mmu.lite()->stats().intervals, 4u);
    EXPECT_EQ(mmu.stats().instructions, 4'000'000u);
}

TEST_F(MmuTest, WalkLocalityKnobBlendsCacheEnergies)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);

    auto walkEnergy = [&](double hitRatio) {
        auto cfg = MmuConfig::make(MmuOrg::Base4K);
        cfg.walkL1CacheHitRatio = hitRatio;
        Mmu mmu(cfg, pt, nullptr);
        mmu.access(0x1234);
        return mmu.energyReport().breakdown.pageWalkMem;
    };

    const double atL1 = walkEnergy(1.0);
    const double atL2 = walkEnergy(0.0);
    const double mid = walkEnergy(0.5);
    EXPECT_NEAR(atL1, 4 * 174.171, kTol);
    EXPECT_GT(atL2, 2.5 * atL1); // L2 reads cost ~2.8x
    EXPECT_NEAR(mid, (atL1 + atL2) / 2.0, 1e-6);
}

TEST_F(MmuTest, HitAttributionSumsToMemOps)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(0x2000, 0x201000, PageSize::Size4K);
    rt.insert({0x1000, 0x3000, 0x200000});
    Mmu mmu(MmuConfig::make(MmuOrg::RmmLite), pt, &rt);

    for (int i = 0; i < 100; ++i)
        mmu.access(0x1000 + (static_cast<Addr>(i) * 64) % 0x2000);

    const auto &s = mmu.stats();
    std::uint64_t total = 0;
    for (unsigned i = 0; i < static_cast<unsigned>(HitSource::Count); ++i)
        total += s.hitsBySource[i];
    EXPECT_EQ(total, s.memOps);
    EXPECT_EQ(s.l1Hits + s.l2Hits + s.l2Misses, s.memOps);
}

TEST_F(MmuTest, LeakageTracksActiveConfiguration)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    Mmu mmu(MmuConfig::make(MmuOrg::TlbLite), pt, nullptr);
    mmu.access(0x1234);
    // L1-4KB (0.3632) + L2 (1.6663) + MMU caches (0.1402 + 0.0500 +
    // 0.0296); the masked structures leak nothing (assumed power-gated
    // until first use).
    const double kMmuCaches = 0.1402 + 0.0500 + 0.0296;
    const auto full = mmu.energyReport().leakagePower;
    EXPECT_NEAR(full, 0.3632 + 1.6663 + kMmuCaches, kTol);
    mmu.tick(1'000'000); // Lite downsizes to 1 way
    const auto down = mmu.energyReport().leakagePower;
    EXPECT_NEAR(down, 0.0636 + 1.6663 + kMmuCaches, kTol);
}

TEST_F(MmuTest, StaticEnergyIntegratesOverInstructions)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    Mmu mmu(MmuConfig::make(MmuOrg::TlbLite), pt, nullptr);
    mmu.access(0x1234);

    // First interval leaks at full configuration: gated == full.
    mmu.tick(1'000'000);
    auto r = mmu.energyReport();
    const double kFullLeak =
        0.3632 + 1.6663 + 0.1402 + 0.0500 + 0.0296; // mW
    const double nsPerInterval = 1'000'000 / 2.0;   // 2 GHz, CPI 1
    EXPECT_NEAR(r.staticEnergyFull, kFullLeak * nsPerInterval, 1.0);
    EXPECT_NEAR(r.staticEnergyGated, r.staticEnergyFull, 1.0);

    // After Lite downsizes (at the interval boundary above), power
    // gating saves the disabled ways' leakage.
    EXPECT_EQ(mmu.l1Tlb4K().activeWays(), 1u);
    mmu.tick(1'000'000);
    r = mmu.energyReport();
    EXPECT_LT(r.staticEnergyGated, r.staticEnergyFull);
    const double gatedSecond =
        (0.0636 + 1.6663 + 0.1402 + 0.0500 + 0.0296) * nsPerInterval;
    EXPECT_NEAR(r.staticEnergyGated,
                kFullLeak * nsPerInterval + gatedSecond, 2.0);
}

TEST_F(MmuTest, CombinedFullyAssocL1ServesAllPageSizes)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(4_MiB, 16_MiB, PageSize::Size2M);

    auto cfg = MmuConfig::make(MmuOrg::Thp);
    cfg.combinedFullyAssocL1 = true;
    Mmu mmu(cfg, pt, nullptr);
    EXPECT_EQ(mmu.l1Tlb2M(), nullptr);
    EXPECT_TRUE(mmu.l1Tlb4K().fullyAssociative());
    EXPECT_EQ(mmu.l1Tlb4K().ways(), 64u);

    mmu.access(0x1234);    // 4 KB walk + fill
    mmu.access(4_MiB + 5); // 2 MB walk + fill
    mmu.access(0x1678);    // combined hit (4 KB entry)
    mmu.access(4_MiB + 9); // combined hit (2 MB entry)
    EXPECT_EQ(mmu.stats().l1Hits, 2u);
    EXPECT_EQ(mmu.stats().hits(HitSource::L1Page4K), 2u);

    // A fully associative combined L1 costs more per lookup than the
    // published 64-entry 4-way set-associative design — the reason the
    // paper baselines on separate set-associative TLBs (§2.2).
    const auto r = mmu.energyReport();
    double combinedRead = 0.0;
    for (const auto &row : r.structs) {
        if (row.name == "L1-combined TLB")
            combinedRead = row.readEnergy;
    }
    EXPECT_GT(combinedRead / 4.0, 5.865);
}

TEST_F(MmuTest, LiteClustersCombinedFullyAssocL1)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    auto cfg = MmuConfig::make(MmuOrg::TlbLite);
    cfg.combinedFullyAssocL1 = true;
    cfg.lite.fullActivationProbability = 0.0;
    Mmu mmu(cfg, pt, nullptr);

    // One hot page and no deeper utility: Lite shrinks the fully
    // associative structure in powers of two, treating entries as
    // pseudo-ways (§4.4).
    for (int i = 0; i < 1000; ++i)
        mmu.access(0x1000 + (i % 8) * 8);
    mmu.tick(1'000'000);
    EXPECT_EQ(mmu.l1Tlb4K().activeWays(), 1u);
    EXPECT_EQ(mmu.l1Tlb4K().activeEntries(), 1u);
    // It still translates (refills into the single active entry).
    mmu.access(0x1234);
    EXPECT_GT(mmu.stats().memOps, 0u);
}

} // namespace
} // namespace eat::core
