/**
 * @file
 * Tests for the Lite decision algorithm (paper §4.2.2, Figure 7).
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "lite/lite_controller.hh"
#include "tlb/set_assoc_tlb.hh"

namespace eat::lite
{
namespace
{

using tlb::SetAssocTlb;

LiteParams
relativeParams()
{
    LiteParams p;
    p.mode = ThresholdMode::Relative;
    p.epsilonRelative = 0.125;
    p.fullActivationProbability = 0.0; // deterministic tests
    return p;
}

LiteParams
absoluteParams()
{
    LiteParams p;
    p.mode = ThresholdMode::Absolute;
    p.epsilonAbsoluteMpki = 0.1;
    p.fullActivationProbability = 0.0;
    return p;
}

TEST(LiteController, DisablesWaysWhenUtilityIsLow)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteController lite(relativeParams(), {&t});

    // One interval: 1000 misses, all hits at the MRU position (no
    // utility in the extra ways).
    for (int i = 0; i < 1000; ++i)
        lite.onL1Miss();
    for (int i = 0; i < 50000; ++i)
        lite.onTlbHit(0, 3, true);
    lite.onIntervalEnd(1'000'000);

    EXPECT_EQ(t.activeWays(), 1u);
    EXPECT_EQ(lite.stats().wayDisableEvents, 1u);
}

TEST(LiteController, KeepsWaysWhenDeepHitsExceedThreshold)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteController lite(relativeParams(), {&t});

    for (int i = 0; i < 1000; ++i)
        lite.onL1Miss();
    // 10000 hits at distance 0-1: dropping to 2 ways would add 10000
    // misses >> the 125-miss slack.
    for (int i = 0; i < 10000; ++i)
        lite.onTlbHit(0, 1, true);
    lite.onIntervalEnd(1'000'000);

    EXPECT_EQ(t.activeWays(), 4u);
    EXPECT_EQ(lite.stats().wayDisableEvents, 0u);
}

TEST(LiteController, StopsAtTheFirstUnaffordableStep)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteController lite(relativeParams(), {&t});

    for (int i = 0; i < 1000; ++i)
        lite.onL1Miss();
    // Distance-2 hits survive 2 ways but are lost at 1 way.
    for (int i = 0; i < 10000; ++i)
        lite.onTlbHit(0, 2, true);
    lite.onIntervalEnd(1'000'000);

    EXPECT_EQ(t.activeWays(), 2u);
}

TEST(LiteController, RedundantHitsCarryNoUtility)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteController lite(absoluteParams(), {&t});

    lite.onL1Miss();
    // Deep hits, but every one is covered by the range TLB too.
    for (int i = 0; i < 50000; ++i)
        lite.onTlbHit(0, 0, /*soleProvider=*/false);
    lite.onIntervalEnd(1'000'000);

    EXPECT_EQ(t.activeWays(), 1u);
}

TEST(LiteController, AbsoluteThresholdAllowsFixedMpkiIncrease)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteController lite(absoluteParams(), {&t});

    // 99 deep hits = 0.099 potential MPKI increase <= 0.1: disable.
    for (int i = 0; i < 99; ++i)
        lite.onTlbHit(0, 0, true);
    lite.onIntervalEnd(1'000'000);
    EXPECT_EQ(t.activeWays(), 1u);

    // Next interval at full... it stays downsized; re-activate manually
    // and exceed the absolute budget: 101 deep hits > 0.1 MPKI.
    t.setActiveWays(4);
    for (int i = 0; i < 101; ++i)
        lite.onTlbHit(0, 0, true);
    lite.onIntervalEnd(1'000'000);
    EXPECT_EQ(t.activeWays(), 4u);
}

TEST(LiteController, ReactivatesOnPerformanceDegradation)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteController lite(absoluteParams(), {&t});

    // Interval 1: quiet; Lite downsizes to 1 way.
    lite.onIntervalEnd(1'000'000);
    EXPECT_EQ(t.activeWays(), 1u);

    // Interval 2: the MPKI jumps (e.g. the OS broke huge pages): all
    // ways come back.
    for (int i = 0; i < 5000; ++i)
        lite.onL1Miss();
    lite.onIntervalEnd(1'000'000);
    EXPECT_EQ(t.activeWays(), 4u);
    EXPECT_EQ(lite.stats().degradationActivations, 1u);
}

TEST(LiteController, SmallFluctuationsDoNotReactivate)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteController lite(absoluteParams(), {&t});

    for (int i = 0; i < 1000; ++i)
        lite.onL1Miss();
    lite.onIntervalEnd(1'000'000); // downsizes (no deep hits)
    EXPECT_EQ(t.activeWays(), 1u);

    // +0.05 MPKI is inside the 0.1 threshold: stay downsized.
    for (int i = 0; i < 1050; ++i)
        lite.onL1Miss();
    lite.onIntervalEnd(1'000'000);
    EXPECT_EQ(t.activeWays(), 1u);
    EXPECT_EQ(lite.stats().degradationActivations, 0u);
}

TEST(LiteController, RandomActivationIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        SetAssocTlb t("t", 64, 4, 12);
        LiteParams p = absoluteParams();
        p.fullActivationProbability = 0.25;
        p.seed = seed;
        LiteController lite(p, {&t});
        std::vector<unsigned> ways;
        for (int i = 0; i < 64; ++i) {
            lite.onIntervalEnd(1'000'000);
            ways.push_back(t.activeWays());
        }
        return std::make_pair(ways, lite.stats().randomActivations);
    };
    const auto a = run(1);
    const auto b = run(1);
    const auto c = run(2);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.second, b.second);
    EXPECT_GT(a.second, 0u);
    EXPECT_NE(a.second, 0u);
    // Different seeds give a different activation schedule (almost
    // surely over 64 intervals).
    EXPECT_NE(a.first, c.first);
}

TEST(LiteController, MonitorsMultipleTlbsIndependently)
{
    SetAssocTlb a("a", 64, 4, 12);
    SetAssocTlb b("b", 32, 4, 21);
    LiteController lite(relativeParams(), {&a, &b});

    for (int i = 0; i < 1000; ++i)
        lite.onL1Miss();
    // TLB a has deep utility; TLB b does not.
    for (int i = 0; i < 10000; ++i)
        lite.onTlbHit(0, 0, true);
    for (int i = 0; i < 10000; ++i)
        lite.onTlbHit(1, 3, true);
    lite.onIntervalEnd(1'000'000);

    EXPECT_EQ(a.activeWays(), 4u);
    EXPECT_EQ(b.activeWays(), 1u);
}

TEST(LiteController, MinWaysFloorIsRespected)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteParams p = relativeParams();
    p.minWays = 2;
    LiteController lite(p, {&t});
    lite.onIntervalEnd(1'000'000);
    EXPECT_EQ(t.activeWays(), 2u);
}

TEST(LiteController, EmptyIntervalIsIgnored)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteController lite(relativeParams(), {&t});
    lite.onIntervalEnd(0);
    EXPECT_EQ(t.activeWays(), 4u);
    EXPECT_EQ(lite.stats().intervals, 0u);
}

TEST(LiteController, CountersResetEachInterval)
{
    SetAssocTlb t("t", 64, 4, 12);
    LiteController lite(relativeParams(), {&t});
    for (int i = 0; i < 500; ++i)
        lite.onL1Miss();
    EXPECT_EQ(lite.actualMisses(), 500u);
    lite.onIntervalEnd(1'000'000);
    EXPECT_EQ(lite.actualMisses(), 0u);
    EXPECT_EQ(lite.profiler(0).totalHits(), 0u);
}

TEST(LiteController, RejectsInvalidSetup)
{
    SetAssocTlb bad("bad", 48, 3, 12); // 3 ways: not a power of two
    EXPECT_THROW(LiteController(relativeParams(), {&bad}),
                 std::logic_error);
    EXPECT_THROW(LiteController(relativeParams(), {nullptr}),
                 std::logic_error);
    LiteParams p = relativeParams();
    p.intervalInstructions = 0;
    SetAssocTlb ok("ok", 64, 4, 12);
    EXPECT_THROW(LiteController(p, {&ok}), std::logic_error);
}

} // namespace
} // namespace eat::lite
