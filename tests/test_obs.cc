/**
 * @file
 * Observability subsystem tests: JSON substrate, metric registry
 * naming/uniqueness, telemetry JSONL round-trips, Chrome-trace
 * well-formedness, and the stage profiler.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "base/logging.hh"
#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/telemetry.hh"
#include "obs/trace.hh"
#include "stats/histogram.hh"

namespace eat::obs
{
namespace
{

// --------------------------------------------------------------------
// JSON substrate
// --------------------------------------------------------------------

TEST(Json, QuoteEscapes)
{
    EXPECT_EQ(jsonQuote("plain"), "\"plain\"");
    EXPECT_EQ(jsonQuote("a\"b"), "\"a\\\"b\"");
    EXPECT_EQ(jsonQuote("a\\b"), "\"a\\\\b\"");
    EXPECT_EQ(jsonQuote("a\nb"), "\"a\\nb\"");
    EXPECT_EQ(jsonQuote(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, NumberFormat)
{
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonNumber(0.0), "0");
    // JSON cannot express non-finite values.
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "0");
    EXPECT_EQ(jsonNumber(std::nan("")), "0");
}

TEST(Json, ObjectBuilds)
{
    JsonObject o;
    EXPECT_TRUE(o.empty());
    EXPECT_EQ(o.str(), "{}");
    o.put("s", "x");
    o.put("n", std::uint64_t{7});
    o.put("b", true);
    JsonObject inner;
    inner.put("k", 1.25);
    o.putRaw("o", inner.str());
    EXPECT_EQ(o.str(), "{\"s\":\"x\",\"n\":7,\"b\":true,"
                       "\"o\":{\"k\":1.25}}");
}

TEST(Json, ParseRoundTrip)
{
    JsonObject o;
    o.put("name", "L1-4KB \"TLB\"\n");
    o.put("count", std::uint64_t{12345});
    o.put("ratio", 0.375);
    o.put("flag", false);
    o.putRaw("list", "[1,2,3]");

    const auto parsed = parseJson(o.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    const JsonValue &v = parsed.value();
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("name")->string, "L1-4KB \"TLB\"\n");
    EXPECT_DOUBLE_EQ(v.find("count")->number, 12345.0);
    EXPECT_DOUBLE_EQ(v.find("ratio")->number, 0.375);
    EXPECT_FALSE(v.find("flag")->boolean);
    ASSERT_TRUE(v.find("list")->isArray());
    EXPECT_EQ(v.find("list")->array.size(), 3u);
    EXPECT_EQ(v.find("absent"), nullptr);
}

TEST(Json, ParseRejectsMalformedInput)
{
    EXPECT_FALSE(parseJson("").ok());
    EXPECT_FALSE(parseJson("{").ok());
    EXPECT_FALSE(parseJson("{} trailing").ok());
    EXPECT_FALSE(parseJson("{\"a\":1,}").ok());
    EXPECT_FALSE(parseJson("[1 2]").ok());
    EXPECT_FALSE(parseJson("'single'").ok());
}

TEST(Json, ParseUnicodeEscape)
{
    const auto parsed = parseJson("\"a\\u00e9b\"");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().string, "a\xc3\xa9" "b");
}

// --------------------------------------------------------------------
// Metric registry
// --------------------------------------------------------------------

TEST(Metrics, ValidatesNames)
{
    EXPECT_TRUE(isValidMetricName("l1.tlb4k.hits"));
    EXPECT_TRUE(isValidMetricName("energy.dynamic_pj"));
    EXPECT_TRUE(isValidMetricName("x"));
    EXPECT_FALSE(isValidMetricName(""));
    EXPECT_FALSE(isValidMetricName(".leading"));
    EXPECT_FALSE(isValidMetricName("trailing."));
    EXPECT_FALSE(isValidMetricName("double..dot"));
    EXPECT_FALSE(isValidMetricName("Upper.case"));
    EXPECT_FALSE(isValidMetricName("spa ce"));
    EXPECT_FALSE(isValidMetricName("da-sh"));
}

TEST(Metrics, BindsCountersGaugesHistograms)
{
    std::uint64_t hits = 41;
    stats::Histogram hist;
    hist.ensureBuckets(3);
    hist.record(1);
    hist.record(1);
    hist.record(2);

    MetricRegistry reg;
    reg.addCounter("l1.tlb4k.hits", &hits);
    reg.addCounter("derived.total", [&hits] { return hits * 2; });
    reg.addGauge("energy.dynamic_pj", [] { return 12.5; });
    reg.addHistogram("mmu.l1_way_lookups_4k", &hist);

    EXPECT_EQ(reg.size(), 4u);
    EXPECT_TRUE(reg.contains("l1.tlb4k.hits"));
    EXPECT_FALSE(reg.contains("l1.tlb4k.misses"));

    // Bindings are live: mutating the source changes the reading.
    EXPECT_EQ(reg.counterValue("l1.tlb4k.hits"), 41u);
    ++hits;
    EXPECT_EQ(reg.counterValue("l1.tlb4k.hits"), 42u);
    EXPECT_EQ(reg.counterValue("derived.total"), 84u);
    EXPECT_DOUBLE_EQ(reg.gaugeValue("energy.dynamic_pj"), 12.5);

    const auto names = reg.names();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(Metrics, PanicsOnDuplicateName)
{
    std::uint64_t c = 0;
    MetricRegistry reg;
    reg.addCounter("a.b", &c);
    EXPECT_THROW(reg.addCounter("a.b", &c), std::logic_error);
    // Kind does not matter: the namespace is shared.
    EXPECT_THROW(reg.addGauge("a.b", [] { return 0.0; }),
                 std::logic_error);
}

TEST(Metrics, PanicsOnMalformedName)
{
    std::uint64_t c = 0;
    MetricRegistry reg;
    EXPECT_THROW(reg.addCounter("Bad.Name", &c), std::logic_error);
    EXPECT_THROW(reg.addCounter("", &c), std::logic_error);
    EXPECT_THROW(reg.addCounter("a..b", &c), std::logic_error);
}

TEST(Metrics, PanicsOnNullBinding)
{
    MetricRegistry reg;
    EXPECT_THROW(reg.addCounter("a.b", static_cast<std::uint64_t *>(
                                           nullptr)),
                 std::logic_error);
    EXPECT_THROW(reg.addHistogram("a.h", nullptr), std::logic_error);
}

TEST(Metrics, WriteJsonParsesAndCarriesSchema)
{
    std::uint64_t c = 7;
    stats::Histogram hist;
    hist.ensureBuckets(2);
    hist.record(0);
    hist.record(1);
    hist.record(1);

    MetricRegistry reg;
    reg.addCounter("mmu.mem_ops", &c);
    reg.addGauge("energy.dynamic_pj", [] { return 2.5; });
    reg.addHistogram("mmu.ways", &hist);

    std::ostringstream out;
    reg.writeJson(out);
    const auto parsed = parseJson(out.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    const JsonValue &doc = parsed.value();
    EXPECT_EQ(doc.find("schema")->string, kMetricsSchema);
    EXPECT_DOUBLE_EQ(doc.find("version")->number, kMetricsVersion);

    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    EXPECT_DOUBLE_EQ(metrics->find("mmu.mem_ops")->number, 7.0);
    EXPECT_DOUBLE_EQ(metrics->find("energy.dynamic_pj")->number, 2.5);
    const JsonValue *h = metrics->find("mmu.ways");
    ASSERT_NE(h, nullptr);
    ASSERT_TRUE(h->find("buckets")->isArray());
    EXPECT_EQ(h->find("buckets")->array.size(), 2u);
    EXPECT_DOUBLE_EQ(h->find("buckets")->array[1].number, 2.0);
    EXPECT_DOUBLE_EQ(h->find("total")->number, 3.0);
}

TEST(Metrics, EmptyRegistryStillWellFormed)
{
    MetricRegistry reg;
    std::ostringstream out;
    reg.writeJson(out);
    const auto parsed = parseJson(out.str());
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value().find("metrics")->object.empty());
}

// --------------------------------------------------------------------
// Telemetry sink
// --------------------------------------------------------------------

IntervalRecord
sampleRecord(std::uint64_t index)
{
    IntervalRecord rec;
    rec.interval = index;
    rec.startInstr = index * 1'000'000;
    rec.instructions = 1'000'000;
    rec.memOps = 400'000;
    rec.l1Hits = 390'000;
    rec.l1Misses = 10'000;
    rec.l2Hits = 8'000;
    rec.l2Misses = 2'000;
    rec.missCycles = 170'000;
    rec.dynamicPj = 123456.75;
    rec.l1Mpki = 10.0;
    rec.l2Mpki = 2.0;
    rec.l1HitRatio = 0.975;
    rec.l2HitRatio = 0.8;
    rec.wayMask = {{"L1-4KB TLB", 2u}, {"L1-2MB TLB", 4u}};
    rec.checkMismatches = 0;
    rec.faultsInjected = 1;
    return rec;
}

TEST(Telemetry, EveryLineIsOneVersionedParseableRecord)
{
    std::ostringstream out;
    TelemetrySink sink(out);
    sink.emit(sampleRecord(0));
    sink.emit(sampleRecord(1));
    EXPECT_EQ(sink.recordsEmitted(), 2u);
    EXPECT_TRUE(sink.close().ok());

    std::istringstream lines(out.str());
    std::string line;
    std::uint64_t expectIndex = 0;
    while (std::getline(lines, line)) {
        const auto parsed = parseJson(line);
        ASSERT_TRUE(parsed.ok())
            << parsed.status().message() << " in: " << line;
        const JsonValue &v = parsed.value();
        EXPECT_EQ(v.find("schema")->string, kTelemetrySchema);
        EXPECT_DOUBLE_EQ(v.find("v")->number, kTelemetryVersion);
        EXPECT_DOUBLE_EQ(v.find("interval")->number,
                         static_cast<double>(expectIndex));
        EXPECT_DOUBLE_EQ(v.find("instructions")->number, 1'000'000.0);
        EXPECT_DOUBLE_EQ(v.find("l1_mpki")->number, 10.0);
        const JsonValue *mask = v.find("way_mask");
        ASSERT_NE(mask, nullptr);
        ASSERT_TRUE(mask->isObject());
        EXPECT_DOUBLE_EQ(mask->find("L1-4KB TLB")->number, 2.0);
        EXPECT_DOUBLE_EQ(mask->find("L1-2MB TLB")->number, 4.0);
        ++expectIndex;
    }
    EXPECT_EQ(expectIndex, 2u);
}

TEST(Telemetry, OpenWritesFile)
{
    const std::string path = ::testing::TempDir() + "eat_obs_tel.jsonl";
    {
        auto sink = TelemetrySink::open(path);
        ASSERT_TRUE(sink.ok()) << sink.status().message();
        sink.value()->emit(sampleRecord(0));
        EXPECT_TRUE(sink.value()->close().ok());
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_TRUE(parseJson(line).ok());
    std::remove(path.c_str());
}

TEST(Telemetry, FlushesEveryRecordBeforeClose)
{
    // A child killed mid-run never calls close(); every record emitted
    // so far must already be on disk (at most a torn final line, never
    // buffered history). Read the file back while the sink is open.
    const std::string path =
        ::testing::TempDir() + "eat_obs_tel_flush.jsonl";
    auto sink = TelemetrySink::open(path);
    ASSERT_TRUE(sink.ok()) << sink.status().message();
    for (unsigned i = 0; i < 3; ++i) {
        sink.value()->emit(sampleRecord(i));
        std::ifstream in(path);
        std::string line;
        unsigned lines = 0;
        while (std::getline(in, line)) {
            EXPECT_TRUE(parseJson(line).ok()) << line;
            ++lines;
        }
        EXPECT_EQ(lines, i + 1);
    }
    EXPECT_TRUE(sink.value()->close().ok());
    std::remove(path.c_str());
}

TEST(Telemetry, OpenReportsUnwritablePath)
{
    const auto sink =
        TelemetrySink::open("/nonexistent-dir-xyzzy/t.jsonl");
    EXPECT_FALSE(sink.ok());
}

// --------------------------------------------------------------------
// Chrome trace writer
// --------------------------------------------------------------------

TEST(Trace, WellFormedWithMonotonicTimestampsAndTracksFirst)
{
    TraceWriter trace;
    std::uint64_t clock = 0;
    trace.setClock(&clock);
    const unsigned lite = trace.track("Lite controller");
    const unsigned tlb = trace.track("L1-4KB TLB");
    EXPECT_EQ(trace.track("Lite controller"), lite); // create-or-get

    clock = 50;
    trace.counter(tlb, "active ways", 4.0);
    clock = 100;
    JsonObject args;
    args.put("from_ways", 4u);
    args.put("to_ways", 2u);
    trace.instant(lite, "way-disable", args.str());
    clock = 75; // out-of-order record; the writer must sort
    trace.instant(lite, "phase-change reset");
    EXPECT_EQ(trace.eventsRecorded(), 3u);
    EXPECT_EQ(trace.eventsDropped(), 0u);

    std::ostringstream out;
    trace.writeTo(out);
    const auto parsed = parseJson(out.str());
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    const JsonValue *events = parsed.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());

    // Metadata first, then payload events in nondecreasing-ts order.
    double lastTs = -1.0;
    bool seenPayload = false;
    unsigned metadata = 0, instants = 0, counters = 0;
    for (const JsonValue &e : events->array) {
        ASSERT_TRUE(e.isObject());
        const std::string &ph = e.find("ph")->string;
        ASSERT_NE(e.find("pid"), nullptr);
        ASSERT_NE(e.find("tid"), nullptr);
        if (ph == "M") {
            EXPECT_FALSE(seenPayload)
                << "metadata after payload events";
            ++metadata;
            continue;
        }
        seenPayload = true;
        const double ts = e.find("ts")->number;
        EXPECT_GE(ts, lastTs) << "timestamps must be nondecreasing";
        lastTs = ts;
        if (ph == "i") {
            ++instants;
            EXPECT_EQ(e.find("s")->string, "t");
        } else if (ph == "C") {
            ++counters;
            EXPECT_DOUBLE_EQ(
                e.find("args")->find("value")->number, 4.0);
        }
    }
    EXPECT_EQ(metadata, 2u);
    EXPECT_EQ(instants, 2u);
    EXPECT_EQ(counters, 1u);
}

TEST(Trace, CapsBufferAndCountsDrops)
{
    TraceWriter trace(2);
    const unsigned t = trace.track("t");
    trace.instant(t, "a");
    trace.instant(t, "b");
    trace.instant(t, "c");
    EXPECT_EQ(trace.eventsRecorded(), 3u);
    EXPECT_EQ(trace.eventsDropped(), 1u);

    std::ostringstream out;
    trace.writeTo(out);
    const auto parsed = parseJson(out.str());
    ASSERT_TRUE(parsed.ok());
    EXPECT_DOUBLE_EQ(parsed.value().find("eatDroppedEvents")->number,
                     1.0);
    // 1 metadata + 2 kept payload events.
    EXPECT_EQ(parsed.value().find("traceEvents")->array.size(), 3u);
}

TEST(Trace, WriteReportsUnwritablePath)
{
    TraceWriter trace;
    EXPECT_FALSE(trace.write("/nonexistent-dir-xyzzy/t.json").ok());
}

// --------------------------------------------------------------------
// Stage profiler
// --------------------------------------------------------------------

TEST(Profiler, MeasuresSequentialStages)
{
    StageProfiler prof;
    prof.start("setup");
    prof.start("simulate"); // implicitly closes "setup"
    prof.stop();
    const StageTimings t = prof.timings();
    ASSERT_EQ(t.stages.size(), 2u);
    EXPECT_EQ(t.stages[0].name, "setup");
    EXPECT_EQ(t.stages[1].name, "simulate");
    EXPECT_GE(t.seconds("setup"), 0.0);
    EXPECT_EQ(t.seconds("missing"), 0.0);
    EXPECT_DOUBLE_EQ(t.total(),
                     t.stages[0].seconds + t.stages[1].seconds);
}

TEST(Profiler, SimKips)
{
    EXPECT_DOUBLE_EQ(simKips(2'000'000, 2.0), 1000.0);
    EXPECT_DOUBLE_EQ(simKips(1'000'000, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(simKips(0, 1.0), 0.0);
}

// --------------------------------------------------------------------
// Log-level control
// --------------------------------------------------------------------

TEST(Logging, SetLogLevelOverrides)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(LogLevel::Warn);
    EXPECT_EQ(logLevel(), LogLevel::Warn);
    setLogLevel(before);
}

} // namespace
} // namespace eat::obs
