/**
 * @file
 * Direct tests for the background range-table walker: hit/miss
 * outcomes, the B-tree-depth walk cost, and context-switch retargeting
 * via setRangeTable() — the entry point the multicore scheduler leans
 * on for RMM organizations.
 */

#include <gtest/gtest.h>

#include "tlb/range_walker.hh"
#include "vm/range_table.hh"

namespace eat::tlb
{
namespace
{

TEST(RangeTableWalker, MissOnAnEmptyTableStillProbesTheRoot)
{
    vm::RangeTable table;
    RangeTableWalker walker(table);

    const auto r = walker.walk(0x2000'0000);
    EXPECT_FALSE(r.range.has_value());
    EXPECT_EQ(r.memRefs, 1u);
}

TEST(RangeTableWalker, HitReturnsTheCoveringRange)
{
    vm::RangeTable table;
    table.insert({0x2000'0000, 0x2040'0000, 0x9000'0000});
    RangeTableWalker walker(table);

    const auto hit = walker.walk(0x2012'3456);
    ASSERT_TRUE(hit.range.has_value());
    EXPECT_EQ(hit.range->vbase, 0x2000'0000u);
    EXPECT_EQ(hit.range->paddr(0x2012'3456), 0x9012'3456u);

    // One byte past the limit: a miss, same table walk cost.
    const auto miss = walker.walk(0x2040'0000);
    EXPECT_FALSE(miss.range.has_value());
    EXPECT_EQ(miss.memRefs, hit.memRefs);
}

TEST(RangeTableWalker, WalkCostGrowsWithBTreeDepth)
{
    vm::RangeTable table;
    RangeTableWalker walker(table);
    const unsigned rootOnly = walker.walk(0).memRefs;

    // Enough disjoint, non-mergeable ranges to force a deeper tree
    // than the root: depth is ceil over fan-out 8.
    for (Addr i = 0; i < 64; ++i) {
        table.insert({0x2000'0000 + i * 0x20'0000,
                      0x2000'0000 + i * 0x20'0000 + 0x10'0000,
                      0x9000'0000 + i * 0x40'0000});
    }
    EXPECT_EQ(table.size(), 64u);
    EXPECT_GT(walker.walk(0x2000'0000).memRefs, rootOnly);
}

TEST(RangeTableWalker, SetRangeTableRetargetsAnotherAddressSpace)
{
    vm::RangeTable a, b;
    a.insert({0x2000'0000, 0x2010'0000, 0x9000'0000});
    b.insert({0x2000'0000, 0x2010'0000, 0xb000'0000});
    RangeTableWalker walker(a);

    ASSERT_TRUE(walker.walk(0x2000'0000).range.has_value());
    EXPECT_EQ(walker.walk(0x2000'0000).range->pbase, 0x9000'0000u);
    walker.setRangeTable(b);
    EXPECT_EQ(walker.walk(0x2000'0000).range->pbase, 0xb000'0000u);
}

} // namespace
} // namespace eat::tlb
