/**
 * @file
 * Tests for the software range table (RMM).
 */

#include <gtest/gtest.h>

#include "vm/range_table.hh"

namespace eat::vm
{
namespace
{

TEST(RangeTranslation, ContainsAndTranslates)
{
    RangeTranslation r{0x10000, 0x20000, 0x500000};
    EXPECT_TRUE(r.contains(0x10000));
    EXPECT_TRUE(r.contains(0x1ffff));
    EXPECT_FALSE(r.contains(0x20000));
    EXPECT_FALSE(r.contains(0xffff));
    EXPECT_EQ(r.bytes(), 0x10000u);
    EXPECT_EQ(r.paddr(0x12345), 0x502345u);
}

TEST(RangeTable, InsertAndLookup)
{
    RangeTable rt;
    rt.insert({0x10000, 0x20000, 0x500000});
    rt.insert({0x40000, 0x50000, 0x700000});
    EXPECT_EQ(rt.size(), 2u);

    auto a = rt.lookup(0x15000);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->pbase, 0x500000u);

    EXPECT_FALSE(rt.lookup(0x30000).has_value());
    EXPECT_FALSE(rt.lookup(0x0).has_value());
    EXPECT_FALSE(rt.lookup(0x20000).has_value()); // exclusive limit
    EXPECT_TRUE(rt.lookup(0x4ffff).has_value());
}

TEST(RangeTable, RejectsOverlapsAndBadRanges)
{
    RangeTable rt;
    rt.insert({0x10000, 0x20000, 0x500000});
    EXPECT_THROW(rt.insert({0x18000, 0x28000, 0x900000}),
                 std::logic_error);
    EXPECT_THROW(rt.insert({0x8000, 0x11000, 0x900000}),
                 std::logic_error);
    EXPECT_THROW(rt.insert({0x30000, 0x30000, 0x900000}),
                 std::logic_error); // empty
    EXPECT_THROW(rt.insert({0x30001, 0x40000, 0x900000}),
                 std::logic_error); // unaligned
}

TEST(RangeTable, MergesDoublyContiguousNeighbours)
{
    RangeTable rt;
    rt.insert({0x10000, 0x20000, 0x500000});
    // Virtually and physically adjacent: merges.
    rt.insert({0x20000, 0x30000, 0x510000});
    EXPECT_EQ(rt.size(), 1u);
    auto r = rt.lookup(0x2ffff);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->vbase, 0x10000u);
    EXPECT_EQ(r->vlimit, 0x30000u);

    // Virtually adjacent but physically discontiguous: stays separate.
    rt.insert({0x30000, 0x40000, 0x900000});
    EXPECT_EQ(rt.size(), 2u);
}

TEST(RangeTable, MergesWithSuccessor)
{
    RangeTable rt;
    rt.insert({0x20000, 0x30000, 0x510000});
    rt.insert({0x10000, 0x20000, 0x500000});
    EXPECT_EQ(rt.size(), 1u);
    EXPECT_EQ(rt.lookup(0x10000)->vlimit, 0x30000u);
}

TEST(RangeTable, EraseRemovesRange)
{
    RangeTable rt;
    rt.insert({0x10000, 0x20000, 0x500000});
    EXPECT_TRUE(rt.erase(0x10000));
    EXPECT_FALSE(rt.erase(0x10000));
    EXPECT_FALSE(rt.lookup(0x15000).has_value());
    EXPECT_TRUE(rt.empty());
}

TEST(RangeTable, CoveredBytes)
{
    RangeTable rt;
    EXPECT_EQ(rt.coveredBytes(), 0u);
    rt.insert({0x10000, 0x20000, 0x500000});
    rt.insert({0x40000, 0x44000, 0x700000});
    EXPECT_EQ(rt.coveredBytes(), 0x14000u);
}

TEST(RangeTable, WalkRefsGrowWithBTreeDepth)
{
    RangeTable rt;
    EXPECT_EQ(rt.walkRefs(), 1u); // empty: root probe only
    // Insert up to fan-out ranges: still depth 1.
    for (unsigned i = 0; i < RangeTable::kBTreeFanout; ++i) {
        const Addr base = (i + 1) * 0x100000;
        rt.insert({base, base + 0x1000, 0x10000000 + i * 0x100000});
    }
    EXPECT_EQ(rt.walkRefs(), 1u);
    // One more range: depth 2.
    rt.insert({0x50000000, 0x50001000, 0x90000000});
    EXPECT_EQ(rt.walkRefs(), 2u);
}

TEST(RangeTable, ArbitrarilyLargeRange)
{
    RangeTable rt;
    // A single range covering 1.6 GB — the RMM headline feature.
    rt.insert({4_GiB, 4_GiB + 1600_MiB, 8_GiB});
    auto r = rt.lookup(4_GiB + 1234567890);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->paddr(4_GiB + 1234567890), 8_GiB + 1234567890);
}

} // namespace
} // namespace eat::vm
