/**
 * @file
 * Tests for the statistics substrate: counters, histograms, tables,
 * CSV emission, and interval timelines.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/counter.hh"
#include "stats/csv.hh"
#include "stats/histogram.hh"
#include "stats/table.hh"
#include "stats/timeline.hh"

namespace eat::stats
{
namespace
{

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c.add(3);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SnapshotCounter, DeltaSinceSnapshot)
{
    SnapshotCounter c;
    c.add(10);
    EXPECT_EQ(c.sinceSnapshot(), 10u);
    EXPECT_EQ(c.snapshot(), 10u);
    EXPECT_EQ(c.sinceSnapshot(), 0u);
    c.add(5);
    EXPECT_EQ(c.sinceSnapshot(), 5u);
    EXPECT_EQ(c.value(), 15u);
    EXPECT_EQ(c.snapshot(), 5u);
}

TEST(Mpki, Computation)
{
    EXPECT_DOUBLE_EQ(mpki(0, 1000), 0.0);
    EXPECT_DOUBLE_EQ(mpki(5, 1000), 5.0);
    EXPECT_DOUBLE_EQ(mpki(5, 2000), 2.5);
    EXPECT_DOUBLE_EQ(mpki(5, 0), 0.0); // no instructions: defined as 0
}

TEST(Histogram, RecordAndFractions)
{
    Histogram h(3);
    h.record(0, 3);
    h.record(2);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.bucketCount(0), 3u);
    EXPECT_EQ(h.bucketCount(1), 0u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_DOUBLE_EQ(h.fraction(0), 0.75);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.25);
}

TEST(Histogram, GrowsOnDemand)
{
    Histogram h;
    h.record(5);
    EXPECT_EQ(h.numBuckets(), 6u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(99), 0u); // out of range reads are 0
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram h(4);
    EXPECT_DOUBLE_EQ(h.fraction(1), 0.0);
}

TEST(Histogram, ResetClearsCounts)
{
    Histogram h(2);
    h.record(1, 7);
    h.reset();
    EXPECT_EQ(h.total(), 0u);
    EXPECT_EQ(h.bucketCount(1), 0u);
    EXPECT_EQ(h.numBuckets(), 2u);
}

TEST(TextTable, AlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "2.5"});
    const std::string s = t.toString();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("longer"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.numCols(), 2u);
}

TEST(TextTable, RejectsWrongArity)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), std::logic_error);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(1.0, 0), "1");
    EXPECT_EQ(TextTable::percent(0.125, 1), "12.5%");
}

TEST(Csv, EscapesSpecialCharacters)
{
    EXPECT_EQ(CsvWriter::escape("plain"), "plain");
    EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
    EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRows)
{
    std::ostringstream os;
    CsvWriter w(os);
    w.writeRow({"a", "b,c"});
    w.writeRow({"1", "2"});
    EXPECT_EQ(os.str(), "a,\"b,c\"\n1,2\n");
}

TEST(Timeline, RecordsAndAggregates)
{
    Timeline t(1000);
    t.record(1.0);
    t.record(3.0);
    t.record(2.0);
    EXPECT_EQ(t.numSamples(), 3u);
    EXPECT_DOUBLE_EQ(t.mean(), 2.0);
    EXPECT_DOUBLE_EQ(t.max(), 3.0);
    EXPECT_EQ(t.intervalInstructions(), 1000u);
}

TEST(Timeline, EmptyAggregates)
{
    Timeline t(10);
    EXPECT_DOUBLE_EQ(t.mean(), 0.0);
    EXPECT_DOUBLE_EQ(t.max(), 0.0);
}

TEST(Timeline, DownsampleAverages)
{
    Timeline t(1);
    for (int i = 0; i < 8; ++i)
        t.record(static_cast<double>(i));
    const auto d = t.downsample(4);
    ASSERT_EQ(d.size(), 4u);
    EXPECT_DOUBLE_EQ(d[0], 0.5);
    EXPECT_DOUBLE_EQ(d[3], 6.5);
}

TEST(Timeline, DownsampleShortSeriesIsIdentity)
{
    Timeline t(1);
    t.record(5.0);
    const auto d = t.downsample(10);
    ASSERT_EQ(d.size(), 1u);
    EXPECT_DOUBLE_EQ(d[0], 5.0);
}

} // namespace
} // namespace eat::stats
