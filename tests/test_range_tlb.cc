/**
 * @file
 * Tests for the range TLB (fully associative cache of range
 * translations).
 */

#include <gtest/gtest.h>

#include "tlb/range_tlb.hh"

namespace eat::tlb
{
namespace
{

using vm::RangeTranslation;

TEST(RangeTlb, MissThenFillThenHit)
{
    RangeTlb t("rt", 4);
    EXPECT_FALSE(t.lookup(0x5000).has_value());
    t.fill({0x4000, 0x8000, 0x100000});
    auto r = t.lookup(0x5000);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->paddr(0x5000), 0x101000u);
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
}

TEST(RangeTlb, BoundaryConditions)
{
    RangeTlb t("rt", 4);
    t.fill({0x4000, 0x8000, 0x100000});
    EXPECT_TRUE(t.probe(0x4000));  // inclusive base
    EXPECT_TRUE(t.probe(0x7fff));
    EXPECT_FALSE(t.probe(0x8000)); // exclusive limit
    EXPECT_FALSE(t.probe(0x3fff));
}

TEST(RangeTlb, ArbitrarilyLargeEntry)
{
    RangeTlb t("rt", 1);
    t.fill({0, 1600_MiB, 4_GiB});
    EXPECT_TRUE(t.probe(1599_MiB));
    EXPECT_EQ(t.lookup(1_GiB)->paddr(1_GiB), 5_GiB);
}

TEST(RangeTlb, LruReplacement)
{
    RangeTlb t("rt", 2);
    t.fill({0x0, 0x1000, 0x100000});
    t.fill({0x10000, 0x11000, 0x200000});
    (void)t.lookup(0x500); // touch the first entry
    t.fill({0x20000, 0x21000, 0x300000});
    EXPECT_TRUE(t.probe(0x500));
    EXPECT_FALSE(t.probe(0x10500)); // the LRU victim
    EXPECT_TRUE(t.probe(0x20500));
}

TEST(RangeTlb, DuplicateFillOnlyTouches)
{
    RangeTlb t("rt", 2);
    t.fill({0x0, 0x1000, 0x100000});
    t.fill({0x0, 0x1000, 0x100000});
    EXPECT_EQ(t.validCount(), 1u);
    EXPECT_EQ(t.fills(), 1u);
}

TEST(RangeTlb, InvalidateAll)
{
    RangeTlb t("rt", 4);
    t.fill({0x0, 0x1000, 0x100000});
    t.invalidateAll();
    EXPECT_EQ(t.validCount(), 0u);
    EXPECT_FALSE(t.probe(0x500));
}

TEST(RangeTlb, RejectsZeroEntries)
{
    EXPECT_THROW(RangeTlb("rt", 0), std::logic_error);
}

} // namespace
} // namespace eat::tlb
