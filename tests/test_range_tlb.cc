/**
 * @file
 * Tests for the range TLB (fully associative cache of range
 * translations).
 */

#include <gtest/gtest.h>

#include "tlb/range_tlb.hh"

namespace eat::tlb
{
namespace
{

using vm::RangeTranslation;

TEST(RangeTlb, MissThenFillThenHit)
{
    RangeTlb t("rt", 4);
    EXPECT_FALSE(t.lookup(0x5000).has_value());
    t.fill({0x4000, 0x8000, 0x100000});
    auto r = t.lookup(0x5000);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->paddr(0x5000), 0x101000u);
    EXPECT_EQ(t.hits(), 1u);
    EXPECT_EQ(t.misses(), 1u);
}

TEST(RangeTlb, BoundaryConditions)
{
    RangeTlb t("rt", 4);
    t.fill({0x4000, 0x8000, 0x100000});
    EXPECT_TRUE(t.probe(0x4000));  // inclusive base
    EXPECT_TRUE(t.probe(0x7fff));
    EXPECT_FALSE(t.probe(0x8000)); // exclusive limit
    EXPECT_FALSE(t.probe(0x3fff));
}

TEST(RangeTlb, ArbitrarilyLargeEntry)
{
    RangeTlb t("rt", 1);
    t.fill({0, 1600_MiB, 4_GiB});
    EXPECT_TRUE(t.probe(1599_MiB));
    EXPECT_EQ(t.lookup(1_GiB)->paddr(1_GiB), 5_GiB);
}

TEST(RangeTlb, LruReplacement)
{
    RangeTlb t("rt", 2);
    t.fill({0x0, 0x1000, 0x100000});
    t.fill({0x10000, 0x11000, 0x200000});
    (void)t.lookup(0x500); // touch the first entry
    t.fill({0x20000, 0x21000, 0x300000});
    EXPECT_TRUE(t.probe(0x500));
    EXPECT_FALSE(t.probe(0x10500)); // the LRU victim
    EXPECT_TRUE(t.probe(0x20500));
}

TEST(RangeTlb, DuplicateFillOnlyTouches)
{
    RangeTlb t("rt", 2);
    t.fill({0x0, 0x1000, 0x100000});
    t.fill({0x0, 0x1000, 0x100000});
    EXPECT_EQ(t.validCount(), 1u);
    EXPECT_EQ(t.fills(), 1u);
}

TEST(RangeTlb, InvalidateAll)
{
    RangeTlb t("rt", 4);
    t.fill({0x0, 0x1000, 0x100000});
    t.invalidateAll();
    EXPECT_EQ(t.validCount(), 0u);
    EXPECT_FALSE(t.probe(0x500));
}

TEST(RangeTlb, RejectsZeroEntries)
{
    EXPECT_THROW(RangeTlb("rt", 0), std::logic_error);
}

/**
 * The historical linear first-match scan, kept verbatim as the
 * reference model for the binary-search lookup: same slot array, same
 * LRU stamps, same counters, same eviction choice.
 */
class LinearRangeTlb
{
  public:
    explicit LinearRangeTlb(unsigned entries) : slots_(entries) {}

    std::optional<RangeTranslation>
    lookup(Addr vaddr, Asid asid)
    {
        for (auto &s : slots_) {
            if (s.valid && s.asid == asid && s.range.contains(vaddr)) {
                s.stamp = ++clock_;
                ++hits_;
                return s.range;
            }
        }
        ++misses_;
        return std::nullopt;
    }

    bool
    fill(const RangeTranslation &range, Asid asid)
    {
        Slot *victim = nullptr;
        for (auto &s : slots_) {
            if (s.valid && s.asid == asid && s.range == range) {
                s.stamp = ++clock_;
                return false;
            }
            if (!s.valid && !victim)
                victim = &s;
        }
        bool evicted = false;
        if (!victim) {
            victim = &slots_[0];
            for (auto &s : slots_) {
                if (s.stamp < victim->stamp)
                    victim = &s;
            }
            evicted = true;
        }
        victim->valid = true;
        victim->range = range;
        victim->stamp = ++clock_;
        victim->asid = asid;
        ++fills_;
        return evicted;
    }

    unsigned
    invalidateRange(Addr vbase, Addr vlimit, Asid asid)
    {
        unsigned n = 0;
        for (auto &s : slots_) {
            if (s.valid && s.asid == asid && s.range.vbase < vlimit &&
                s.range.vlimit > vbase) {
                s.valid = false;
                ++n;
            }
        }
        return n;
    }

    unsigned
    invalidateAsid(Asid asid)
    {
        unsigned n = 0;
        for (auto &s : slots_) {
            if (s.valid && s.asid == asid) {
                s.valid = false;
                ++n;
            }
        }
        return n;
    }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Slot
    {
        bool valid = false;
        RangeTranslation range{};
        std::uint64_t stamp = 0;
        Asid asid = 0;
    };
    std::vector<Slot> slots_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t fills_ = 0;
};

/**
 * Differential check of the binary-search lookup against the linear
 * scan over a long pseudo-random op sequence: disjoint-per-ASID
 * ranges (the invariant the MMU maintains), multiple ASIDs, fills,
 * shootdown invalidations, and full-ASID flushes.
 */
TEST(RangeTlb, BinarySearchMatchesLinearScan)
{
    RangeTlb dut("rt", 8);
    LinearRangeTlb ref(8);

    // Stable chunk mapping per (asid, chunk): refills always reinstall
    // the same translation, keeping cached ranges disjoint per ASID.
    constexpr Addr kChunk = 0x10000;
    auto rangeOf = [](Asid asid, unsigned chunk) {
        const Addr vbase = chunk * kChunk;
        const Addr pbase =
            0x1000000u + (asid * 64u + chunk) * kChunk;
        return RangeTranslation{vbase, vbase + kChunk, pbase};
    };

    std::uint64_t state = 0x9e3779b97f4a7c15ull;
    auto rnd = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };

    for (unsigned i = 0; i < 20000; ++i) {
        const Asid asid = static_cast<Asid>(rnd() % 3);
        const unsigned chunk = rnd() % 16;
        switch (rnd() % 8) {
          case 0:
            EXPECT_EQ(dut.fill(rangeOf(asid, chunk), asid),
                      ref.fill(rangeOf(asid, chunk), asid));
            break;
          case 1: {
            const Addr vbase = chunk * kChunk;
            EXPECT_EQ(dut.invalidateRange(vbase, vbase + kChunk, asid),
                      ref.invalidateRange(vbase, vbase + kChunk, asid));
            break;
          }
          case 2:
            if (rnd() % 16 == 0) {
                EXPECT_EQ(dut.invalidateAsid(asid),
                          ref.invalidateAsid(asid));
            }
            break;
          default: {
            // Probe interior, boundary, and just-outside addresses.
            const Addr vaddr =
                chunk * kChunk + (rnd() % (kChunk + 0x100));
            const auto got = dut.lookup(vaddr, asid);
            const auto want = ref.lookup(vaddr, asid);
            ASSERT_EQ(got.has_value(), want.has_value())
                << "op " << i << " vaddr " << vaddr;
            if (got) {
                EXPECT_EQ(got->vbase, want->vbase);
                EXPECT_EQ(got->vlimit, want->vlimit);
                EXPECT_EQ(got->paddr(vaddr), want->paddr(vaddr));
            }
            break;
          }
        }
    }
    EXPECT_EQ(dut.hits(), ref.hits());
    EXPECT_EQ(dut.misses(), ref.misses());
}

/** Predecessor edges across ASID boundaries in the sorted index: the
 *  last range of ASID a must not serve ASID a+1's lookups. */
TEST(RangeTlb, BinarySearchAsidBoundaries)
{
    RangeTlb t("rt", 4);
    t.fill({0x10000, 0x20000, 0x100000}, 1);
    t.fill({0x30000, 0x40000, 0x200000}, 2);

    // ASID 2 at an address only ASID 1 maps: the predecessor in the
    // (asid, vbase) order is ASID 1's range — must miss.
    EXPECT_FALSE(t.lookup(0x10000, 2).has_value());
    // ASID 1 at an address only ASID 2 maps: predecessor is ASID 1's
    // own (non-containing) range — must miss.
    EXPECT_FALSE(t.lookup(0x30000, 1).has_value());
    // Each ASID still hits its own range, including at vbase.
    EXPECT_TRUE(t.lookup(0x10000, 1).has_value());
    EXPECT_TRUE(t.lookup(0x30000, 2).has_value());
    // Below the whole index for the smallest ASID: no predecessor.
    EXPECT_FALSE(t.lookup(0x0, 1).has_value());
}

} // namespace
} // namespace eat::tlb
