/**
 * @file
 * Tests for the base substrate: types, logging, and the deterministic
 * random-number generator.
 */

#include <gtest/gtest.h>

#include <set>

#include "base/logging.hh"
#include "base/rng.hh"
#include "base/types.hh"

namespace eat
{
namespace
{

TEST(Types, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(1ull << 40));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(6));
}

TEST(Types, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1ull << 33), 33u);
}

TEST(Types, Alignment)
{
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
    EXPECT_EQ(alignDown(4096, 4096), 4096u);
    EXPECT_EQ(alignUp(4097, 4096), 8192u);
    EXPECT_EQ(alignUp(4096, 4096), 4096u);
    EXPECT_EQ(alignUp(0, 4096), 0u);
}

TEST(Types, UnitLiterals)
{
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
    EXPECT_EQ(1_GiB, 1024u * 1024 * 1024);
}

TEST(Logging, PanicThrows)
{
    EXPECT_THROW(eat_panic("boom ", 42), std::logic_error);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(eat_fatal("user error"), std::runtime_error);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(eat_assert(1 + 1 == 2, "fine"));
    EXPECT_THROW(eat_assert(1 + 1 == 3, "broken"), std::logic_error);
}

TEST(Logging, LevelFiltersWarnAndInform)
{
    // The EAT_LOG_LEVEL contract (README "Observability"): silent
    // suppresses warn() and inform(), warn suppresses inform() only,
    // info prints both. setLogLevel() is the programmatic face of the
    // same switch (it wins over the environment), so the filtering is
    // tested through it; panic/fatal are unconditional either way.
    struct Restore
    {
        ~Restore() { setLogLevel(LogLevel::Info); }
    } restore;

    setLogLevel(LogLevel::Silent);
    ::testing::internal::CaptureStderr();
    eat_warn("w-silent");
    eat_inform("i-silent");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    eat_warn("w-warn");
    eat_inform("i-warn");
    std::string captured = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(captured.find("w-warn"), std::string::npos) << captured;
    EXPECT_EQ(captured.find("i-warn"), std::string::npos) << captured;

    setLogLevel(LogLevel::Info);
    ::testing::internal::CaptureStderr();
    eat_warn("w-info");
    eat_inform("i-info");
    captured = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(captured.find("w-info"), std::string::npos) << captured;
    EXPECT_NE(captured.find("i-info"), std::string::npos) << captured;
}

TEST(Rng, Deterministic)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(9);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.02);
}

TEST(Rng, ForkIndependent)
{
    Rng a(42);
    Rng b = a.fork();
    // The fork should not replay the parent's stream.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next()) ? 1 : 0;
    EXPECT_LT(same, 3);
}

} // namespace
} // namespace eat
