/**
 * @file
 * Tests for the two-dimensional (guest x host) walker and the nested
 * paging mode built on it:
 *
 *  - the closed-form cold-walk reference count n + (n + 1) x m holds
 *    for every (guest leaf x host leaf) combination, and the textbook
 *    4 KB / 4 KB worst case of 24 references is actually reached;
 *  - identity host mode issues zero host walks and leaves the
 *    translation untouched (the differential anchor);
 *  - a nonzero host offset composes through the host dimension, so
 *    the final translation provably routes through the host table;
 *  - the host PWC short-circuits repeat walks and huge host pages
 *    shorten every host walk;
 *  - an identity-host end-to-end run is digest-identical to a flat
 *    run for all six organizations;
 *  - a paged-host run obeys the accounting identities
 *    hostWalks == walkMemRefs + l2Misses and the host energy rows
 *    charge exactly one read per probe/reference.
 */

#include <gtest/gtest.h>

#include "qa/oracles.hh"
#include "sim/simulator.hh"
#include "tlb/mmu_cache.hh"
#include "vm/host_table.hh"
#include "vm/nested_walker.hh"
#include "workloads/suite.hh"

namespace eat::vm
{
namespace
{

// The oracle is closed-form and constexpr: n guest references plus
// one host walk of m references per guest reference and one for the
// data page.
static_assert(NestedWalker::worstCaseRefs(PageSize::Size4K,
                                          PageSize::Size4K) == 24);
static_assert(NestedWalker::worstCaseRefs(PageSize::Size2M,
                                          PageSize::Size4K) == 19);
static_assert(NestedWalker::worstCaseRefs(PageSize::Size1G,
                                          PageSize::Size4K) == 14);
static_assert(NestedWalker::worstCaseRefs(PageSize::Size4K,
                                          PageSize::Size2M) == 19);
static_assert(NestedWalker::worstCaseRefs(PageSize::Size4K,
                                          PageSize::Size1G) == 14);
static_assert(NestedWalker::worstCaseRefs(PageSize::Size1G,
                                          PageSize::Size1G) == 8);

/** A walker over one 4 KB guest mapping with the given host table. */
struct Rig
{
    PageTable guest;
    tlb::MmuCache guestCache;
    HostTable host;
    tlb::MmuCache hostCache;
    NestedWalker walker;

    explicit Rig(const HostTableConfig &hostCfg)
        : host(hostCfg),
          walker(guest, guestCache, host, hostCache)
    {
        guest.map(0x2000'0000, 0x9000'0000, PageSize::Size4K);
    }
};

TEST(NestedWalker, ColdWalkReachesTheTextbookWorstCase)
{
    Rig rig({HostMode::Paged, PageSize::Size4K});

    const auto r = rig.walker.walk(0x2000'0abc);
    // Guest dimension: a cold 4 KB walk is 4 references.
    EXPECT_EQ(r.guestCache.memRefs, 4u);
    // Host dimension: one host walk per guest node plus the data page,
    // each cold (every nodeGpa lives in its own 512 GB host region).
    EXPECT_EQ(r.hostWalkCount, 5u);
    for (unsigned i = 0; i < r.hostWalkCount; ++i) {
        EXPECT_EQ(r.hostWalks[i].memRefs, 4u) << "host walk " << i;
        EXPECT_FALSE(r.hostWalks[i].pwcHit) << "host walk " << i;
    }
    EXPECT_EQ(r.hostMemRefs, 20u);
    EXPECT_EQ(r.totalMemRefs(),
              NestedWalker::worstCaseRefs(PageSize::Size4K,
                                          PageSize::Size4K));
}

TEST(NestedWalker, IdentityHostIssuesNoHostWalks)
{
    Rig rig({HostMode::Identity, PageSize::Size4K});

    const auto r = rig.walker.walk(0x2000'0abc);
    EXPECT_EQ(r.hostWalkCount, 0u);
    EXPECT_EQ(r.hostMemRefs, 0u);
    // The walk is exactly the flat walk: same cost, same translation.
    EXPECT_EQ(r.guestCache.memRefs, 4u);
    EXPECT_EQ(r.totalMemRefs(), 4u);
    EXPECT_EQ(r.translation.pbase, 0x9000'0000u);
    EXPECT_EQ(r.translation.pbase, r.guestTranslation.pbase);
}

TEST(NestedWalker, HostOffsetComposesThroughTheHostDimension)
{
    // A nonzero direct-map offset proves the final translation routes
    // through the host table rather than copying the guest result.
    // (Simulator runs keep offset 0 so translations stay flat-valued;
    // the offset is a unit-test affordance.)
    HostTableConfig cfg{HostMode::Paged, PageSize::Size4K};
    cfg.offset = 0x40'0000'0000; // 256 GB, aligned for any host leaf
    Rig rig(cfg);

    const auto r = rig.walker.walk(0x2000'0abc);
    EXPECT_EQ(r.guestTranslation.pbase, 0x9000'0000u);
    EXPECT_EQ(r.translation.pbase, 0x9000'0000u + 0x40'0000'0000u);
    EXPECT_EQ(r.translation.vbase, r.guestTranslation.vbase);
    EXPECT_EQ(r.translation.size, r.guestTranslation.size);
}

TEST(NestedWalker, HostPwcShortCircuitsRepeatWalks)
{
    Rig rig({HostMode::Paged, PageSize::Size4K});

    const auto cold = rig.walker.walk(0x2000'0abc);
    ASSERT_EQ(cold.totalMemRefs(), 24u);

    // Second access to the same page: the guest PWC leaves one guest
    // reference (the PT leaf), so two host walks remain — the PT node
    // and the data page — and both hit the now-warm host PWC down to
    // one reference each.
    const auto warm = rig.walker.walk(0x2000'0abc);
    EXPECT_EQ(warm.guestCache.memRefs, 1u);
    EXPECT_EQ(warm.hostWalkCount, 2u);
    for (unsigned i = 0; i < warm.hostWalkCount; ++i) {
        EXPECT_TRUE(warm.hostWalks[i].pwcHit) << "host walk " << i;
        EXPECT_EQ(warm.hostWalks[i].memRefs, 1u) << "host walk " << i;
    }
    EXPECT_EQ(warm.totalMemRefs(), 3u);
}

TEST(NestedWalker, HugeHostPagesShortenEveryHostWalk)
{
    // A 2 MB host leaf lives at the PDE level: 3 references per host
    // walk; a 1 GB leaf at the PDPTE level: 2.
    Rig twoMeg({HostMode::Paged, PageSize::Size2M});
    EXPECT_EQ(twoMeg.walker.walk(0x2000'0abc).totalMemRefs(),
              NestedWalker::worstCaseRefs(PageSize::Size4K,
                                          PageSize::Size2M));

    Rig oneGig({HostMode::Paged, PageSize::Size1G});
    EXPECT_EQ(oneGig.walker.walk(0x2000'0abc).totalMemRefs(),
              NestedWalker::worstCaseRefs(PageSize::Size4K,
                                          PageSize::Size1G));
}

TEST(NestedWalker, NodeGpaSeparatesLevelsSpacesAndRegions)
{
    const Addr vaddr = 0x2000'0abc;
    // Each level lives in its own 512 GB host region, so one cold
    // nested walk shares no host-PWC state between its host walks.
    for (unsigned level = 1; level <= 4; ++level) {
        EXPECT_EQ(NestedWalker::nodeGpa(level, vaddr, 0) >> 39,
                  Addr(level));
    }
    // Distinct address spaces get distinct node placements...
    EXPECT_NE(NestedWalker::nodeGpa(1, vaddr, 0),
              NestedWalker::nodeGpa(1, vaddr, 1));
    // ...and so do distinct covered regions of one space.
    EXPECT_NE(NestedWalker::nodeGpa(1, vaddr, 0),
              NestedWalker::nodeGpa(1, vaddr + (1ull << 21), 0));
    // But two addresses under the same node share its placement (that
    // is what gives the host PWC real locality).
    EXPECT_EQ(NestedWalker::nodeGpa(1, vaddr, 0),
              NestedWalker::nodeGpa(1, vaddr + 0x1000, 0));
}

// --- end-to-end nested paging through the simulator ---

sim::SimConfig
vmConfig(const std::string &workload, core::MmuOrg org)
{
    sim::SimConfig cfg;
    cfg.workload = *workloads::findWorkload(workload);
    cfg.mmu = core::MmuConfig::make(org);
    cfg.simulateInstructions = 60'000;
    cfg.fastForwardInstructions = 5'000;
    cfg.seed = 42;
    return cfg;
}

TEST(NestedPaging, IdentityHostIsDigestIdenticalToFlatForAllOrgs)
{
    // The differential anchor: `--vm=identity` engages the whole
    // nested machinery but must not change a single result bit, for
    // every organization.
    for (const auto org : core::allOrgs()) {
        auto flat = vmConfig("mcf", org);
        auto identity = flat;
        identity.mmu.vmEnabled = true;
        identity.mmu.vmIdentityHost = true;

        const auto a = sim::simulate(flat);
        const auto b = sim::simulate(identity);
        EXPECT_EQ(qa::resultDigest(a), qa::resultDigest(b))
            << core::orgName(org);
        EXPECT_EQ(b.stats.hostWalks, 0u) << core::orgName(org);
        EXPECT_EQ(b.stats.hostWalkMemRefs, 0u) << core::orgName(org);
    }
}

const energy::StructEnergyRow *
findRow(const std::vector<energy::StructEnergyRow> &rows,
        std::string_view name)
{
    for (const auto &row : rows)
        if (row.name == name)
            return &row;
    return nullptr;
}

TEST(NestedPaging, PagedHostObeysTheAccountingIdentities)
{
    auto cfg = vmConfig("mcf", core::MmuOrg::Thp);
    cfg.mmu.vmEnabled = true;

    const auto r = sim::simulate(cfg);
    const auto &s = r.stats;
    ASSERT_GT(s.l2Misses, 0u);

    // Every guest-walk memory reference plus the data page of every
    // walk costs exactly one host walk.
    EXPECT_EQ(s.hostWalks, s.walkMemRefs + s.l2Misses);
    EXPECT_GT(s.hostWalkMemRefs, 0u);

    // The energy book mirrors the walker: one host-PWC probe per host
    // walk, one host-memory read per host reference.
    const auto *pwc = findRow(r.energy.structs, "host-PWC");
    const auto *mem = findRow(r.energy.structs, "host-walk memory");
    ASSERT_NE(pwc, nullptr);
    ASSERT_NE(mem, nullptr);
    EXPECT_EQ(pwc->reads, s.hostWalks);
    EXPECT_EQ(mem->reads, s.hostWalkMemRefs);
    EXPECT_GT(mem->readEnergy, 0.0);
}

TEST(NestedPaging, PagedHostCostsMoreThanIdentityNeverChangesResults)
{
    auto identity = vmConfig("omnetpp", core::MmuOrg::Base4K);
    identity.mmu.vmEnabled = true;
    identity.mmu.vmIdentityHost = true;
    auto paged = identity;
    paged.mmu.vmIdentityHost = false;

    const auto a = sim::simulate(identity);
    const auto b = sim::simulate(paged);
    // Virtualization is a cost model, never a value model: the paged
    // host changes energy and cycles, not what gets translated.
    EXPECT_EQ(a.stats.memOps, b.stats.memOps);
    EXPECT_EQ(a.stats.l1Misses, b.stats.l1Misses);
    EXPECT_EQ(a.stats.l2Misses, b.stats.l2Misses);
    EXPECT_EQ(a.check.mismatches(), 0u);
    EXPECT_EQ(b.check.mismatches(), 0u);
    EXPECT_GT(b.stats.hostWalks, 0u);
    EXPECT_GT(b.totalEnergy(), a.totalEnergy());
}

TEST(NestedPaging, HugeHostPagesReduceHostReferences)
{
    auto cfg = vmConfig("mcf", core::MmuOrg::Thp);
    cfg.mmu.vmEnabled = true;

    auto refsWith = [&cfg](PageSize hostSize) {
        auto c = cfg;
        c.mmu.hostPageSize = hostSize;
        const auto r = sim::simulate(c);
        EXPECT_EQ(r.stats.hostWalks,
                  r.stats.walkMemRefs + r.stats.l2Misses);
        return r.stats.hostWalkMemRefs;
    };
    const auto refs4k = refsWith(PageSize::Size4K);
    const auto refs2m = refsWith(PageSize::Size2M);
    const auto refs1g = refsWith(PageSize::Size1G);
    EXPECT_GT(refs4k, refs2m);
    EXPECT_GT(refs2m, refs1g);
}

} // namespace
} // namespace eat::vm
