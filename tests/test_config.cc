/**
 * @file
 * Tests that the six organization presets match the paper's §5
 * configurations (Figure 9) exactly.
 */

#include <gtest/gtest.h>

#include "core/config.hh"

namespace eat::core
{
namespace
{

TEST(Config, AllOrgsListedInPaperOrder)
{
    const auto &orgs = allOrgs();
    ASSERT_EQ(orgs.size(), 6u);
    EXPECT_EQ(orgs[0], MmuOrg::Base4K);
    EXPECT_EQ(orgs[1], MmuOrg::Thp);
    EXPECT_EQ(orgs[2], MmuOrg::TlbLite);
    EXPECT_EQ(orgs[3], MmuOrg::Rmm);
    EXPECT_EQ(orgs[4], MmuOrg::TlbPP);
    EXPECT_EQ(orgs[5], MmuOrg::RmmLite);
}

TEST(Config, Names)
{
    EXPECT_EQ(orgName(MmuOrg::Base4K), "4KB");
    EXPECT_EQ(orgName(MmuOrg::Thp), "THP");
    EXPECT_EQ(orgName(MmuOrg::TlbLite), "TLB_Lite");
    EXPECT_EQ(orgName(MmuOrg::Rmm), "RMM");
    EXPECT_EQ(orgName(MmuOrg::TlbPP), "TLB_PP");
    EXPECT_EQ(orgName(MmuOrg::RmmLite), "RMM_Lite");
}

TEST(Config, SandyBridgeGeometryIsTheDefault)
{
    const auto cfg = MmuConfig::make(MmuOrg::Thp);
    EXPECT_EQ(cfg.l1Tlb4K.entries, 64u);
    EXPECT_EQ(cfg.l1Tlb4K.ways, 4u);
    EXPECT_EQ(cfg.l1Tlb2M.entries, 32u);
    EXPECT_EQ(cfg.l1Tlb2M.ways, 4u);
    EXPECT_EQ(cfg.l1Tlb1GEntries, 4u);
    EXPECT_EQ(cfg.l2Tlb.entries, 512u);
    EXPECT_EQ(cfg.l2Tlb.ways, 4u);
    EXPECT_EQ(cfg.l1RangeEntries, 4u);
    EXPECT_EQ(cfg.l2RangeEntries, 32u);
    EXPECT_EQ(cfg.mmuCache.pdeEntries, 32u);
    EXPECT_EQ(cfg.mmuCache.pdeWays, 2u);
    EXPECT_EQ(cfg.mmuCache.pdpteEntries, 4u);
    EXPECT_EQ(cfg.mmuCache.pml4Entries, 2u);
    EXPECT_EQ(cfg.l2HitLatency, 7u);
    EXPECT_EQ(cfg.pageWalkLatency, 50u);
    EXPECT_DOUBLE_EQ(cfg.walkL1CacheHitRatio, 1.0);
}

TEST(Config, StructurePresenceFollowsOrganization)
{
    EXPECT_FALSE(MmuConfig::make(MmuOrg::Base4K).hasL2Range);
    EXPECT_FALSE(MmuConfig::make(MmuOrg::Thp).liteEnabled);
    EXPECT_TRUE(MmuConfig::make(MmuOrg::TlbLite).liteEnabled);
    EXPECT_TRUE(MmuConfig::make(MmuOrg::Rmm).hasL2Range);
    EXPECT_FALSE(MmuConfig::make(MmuOrg::Rmm).hasL1Range);
    EXPECT_FALSE(MmuConfig::make(MmuOrg::Rmm).liteEnabled);
    EXPECT_TRUE(MmuConfig::make(MmuOrg::TlbPP).mixedTlbs);
    const auto rmmLite = MmuConfig::make(MmuOrg::RmmLite);
    EXPECT_TRUE(rmmLite.hasL1Range);
    EXPECT_TRUE(rmmLite.hasL2Range);
    EXPECT_TRUE(rmmLite.liteEnabled);
}

TEST(Config, LiteThresholdsMatchPaperSection5)
{
    // TLB_Lite: 12.5% relative; RMM_Lite: 0.1 MPKI absolute.
    const auto tlbLite = MmuConfig::make(MmuOrg::TlbLite);
    EXPECT_EQ(tlbLite.lite.mode, lite::ThresholdMode::Relative);
    EXPECT_DOUBLE_EQ(tlbLite.lite.epsilonRelative, 0.125);
    EXPECT_EQ(tlbLite.lite.intervalInstructions, 1'000'000u);
    EXPECT_EQ(tlbLite.lite.minWays, 1u);

    const auto rmmLite = MmuConfig::make(MmuOrg::RmmLite);
    EXPECT_EQ(rmmLite.lite.mode, lite::ThresholdMode::Absolute);
    EXPECT_DOUBLE_EQ(rmmLite.lite.epsilonAbsoluteMpki, 0.1);
}

TEST(Config, OsPoliciesFollowOrganization)
{
    auto pol = [](MmuOrg org) { return MmuConfig::make(org).osPolicy(); };
    EXPECT_FALSE(pol(MmuOrg::Base4K).transparentHugePages);
    EXPECT_FALSE(pol(MmuOrg::Base4K).eagerPaging);
    EXPECT_TRUE(pol(MmuOrg::Thp).transparentHugePages);
    EXPECT_TRUE(pol(MmuOrg::TlbLite).transparentHugePages);
    EXPECT_TRUE(pol(MmuOrg::TlbPP).transparentHugePages);
    // RMM: huge pages + eager paging; RMM_Lite: 4 KB + eager only.
    EXPECT_TRUE(pol(MmuOrg::Rmm).transparentHugePages);
    EXPECT_TRUE(pol(MmuOrg::Rmm).eagerPaging);
    EXPECT_FALSE(pol(MmuOrg::RmmLite).transparentHugePages);
    EXPECT_TRUE(pol(MmuOrg::RmmLite).eagerPaging);
}

} // namespace
} // namespace eat::core
