/**
 * @file
 * Negative-path tests for the command-line drivers.
 *
 * The positive paths are covered by the library tests and CI's smoke
 * lanes; what those never exercise is how the tools fail. A malformed
 * flag that exits 0, or a crash where a diagnostic belongs, silently
 * corrupts sweep scripts — so every case here asserts BOTH the nonzero
 * exit code and a recognizable fragment of the diagnostic text.
 *
 * Binary locations come from CMake compile definitions
 * (EAT_EATSIM_PATH etc.), so the tests run against exactly the
 * binaries this build produced.
 */

#include <cstdio>
#include <fstream>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

namespace
{

struct CmdResult
{
    int exitCode = -1;
    std::string output; ///< stdout + stderr interleaved
};

/** Run @p cmd under the shell, capturing output and exit status. */
CmdResult
run(const std::string &cmd)
{
    CmdResult result;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe) {
        ADD_FAILURE() << "popen failed for: " << cmd;
        return result;
    }
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, pipe)) > 0)
        result.output.append(buffer, n);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        result.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        result.exitCode = 128 + WTERMSIG(status);
    return result;
}

void
expectFailure(const std::string &cmd, int exitCode,
              const std::string &fragment)
{
    const CmdResult result = run(cmd);
    EXPECT_EQ(result.exitCode, exitCode)
        << cmd << "\noutput:\n" << result.output;
    EXPECT_NE(result.output.find(fragment), std::string::npos)
        << cmd << ": diagnostic must mention '" << fragment
        << "'\noutput:\n" << result.output;
}

const std::string kEatsim = EAT_EATSIM_PATH;
const std::string kEatbatch = EAT_EATBATCH_PATH;
const std::string kEatperf = EAT_EATPERF_PATH;
const std::string kEatfuzz = EAT_EATFUZZ_PATH;
const std::string kEatreport = EAT_EATREPORT_PATH;

TEST(CliEatsim, RejectsMalformedInjectGrammar)
{
    // Unknown fault kind, garbage probability, empty clause, and an
    // out-of-range probability: all usage errors before any simulation
    // starts.
    expectFailure(kEatsim + " --workload=mcf --inject=frobnicate:0.1", 2,
                  "--inject");
    expectFailure(kEatsim + " --workload=mcf --inject=tag-flip@l1-4k:zap",
                  2, "--inject");
    expectFailure(kEatsim + " --workload=mcf --inject=", 2, "--inject");
    expectFailure(kEatsim + " --workload=mcf --inject=ppn-flip:1.5", 2,
                  "--inject");
}

TEST(CliEatsim, RejectsUnknownWorkloadAndOrg)
{
    expectFailure(kEatsim + " --workload=quake3", 2, "unknown workload");
    expectFailure(kEatsim + " --workload=mcf --org=HUGE", 2,
                  "unknown organization");
}

TEST(CliEatsim, RejectsGarbageNumericFlags)
{
    expectFailure(kEatsim + " --workload=mcf --instructions=many", 2,
                  "--instructions");
    expectFailure(kEatsim + " --workload=mcf --seed=0x", 2, "--seed");
}

TEST(CliEatsim, FailsOnMissingTraceFile)
{
    expectFailure(kEatsim + " --workload=mcf --replay=" +
                      ::testing::TempDir() + "/no_such_trace.eat",
                  1, "cannot open trace file");
}

TEST(CliEatsim, FailsOnTruncatedTraceFile)
{
    // A file that passes the magic check but whose body is shorter
    // than the record count the header promises.
    const std::string path =
        ::testing::TempDir() + "/truncated_trace.eat";
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write("EATTRACE", 8);
        const std::uint32_t version = 1;
        const std::uint32_t records = 1000;
        out.write(reinterpret_cast<const char *>(&version), 4);
        out.write(reinterpret_cast<const char *>(&records), 4);
        out.write("\x01\x02\x03", 3); // a fraction of one record
    }
    const CmdResult result =
        run(kEatsim + " --workload=mcf --replay=" + path);
    EXPECT_EQ(result.exitCode, 1) << result.output;
    EXPECT_NE(result.output.find("trace file"), std::string::npos)
        << result.output;
}

TEST(CliEatsim, FailsOnGarbageTraceFile)
{
    const std::string path = ::testing::TempDir() + "/garbage_trace.eat";
    {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out << "this is not a trace file at all, but it is long enough";
    }
    expectFailure(kEatsim + " --workload=mcf --replay=" + path, 1,
                  "bad magic");
}

TEST(CliEatsim, RejectsBadCoreCounts)
{
    expectFailure(kEatsim + " --workload=mcf --cores=0", 2,
                  "out of range");
    expectFailure(kEatsim + " --workload=mcf --cores=99", 2,
                  "out of range");
    expectFailure(kEatsim + " --workload=mcf --cores=two", 2, "--cores");
}

TEST(CliEatsim, RejectsBadMixes)
{
    expectFailure(kEatsim + " --mix=nosuchworkload", 2,
                  "unknown workload");
    expectFailure(kEatsim + " --mix=", 2, "empty mix");
    expectFailure(kEatsim + " --mix=mcf,,canneal", 2,
                  "empty workload name");
}

TEST(CliEatsim, RejectsInconsistentMulticoreFlags)
{
    expectFailure(kEatsim + " --workload=mcf --cores=2 --fault-core=2",
                  2, "--fault-core");
    expectFailure(kEatsim + " --workload=mcf --cores=2 --quantum=0", 2,
                  "--quantum");
    expectFailure(kEatsim + " --workload=mcf --cores=2 --record=" +
                      ::testing::TempDir() + "/mc.eat",
                  2, "single-core only");
}

TEST(CliEatbatch, RejectsBadCoresAndMixes)
{
    const std::string base =
        kEatbatch + " --out=" + ::testing::TempDir() + "/cli_mc.csv";
    expectFailure(base + " --cores=0", 2, "out of range");
    expectFailure(base + " --cores=99", 2, "out of range");
    expectFailure(base + " --mix=nosuchworkload", 2, "unknown workload");
    expectFailure(base + " --mix=", 2, "empty mix");
}

TEST(CliEatbatch, RejectsBadJobCounts)
{
    const std::string base =
        kEatbatch + " --out=" + ::testing::TempDir() + "/cli_jobs.csv";
    expectFailure(base + " --jobs=0", 2, "jobs");
    expectFailure(base + " --jobs=grue", 2, "jobs");
    expectFailure(base + " -j100000", 2, "jobs");
}

TEST(CliEatbatch, RejectsMalformedInjectAndUsage)
{
    expectFailure(kEatbatch + " --out=" + ::testing::TempDir() +
                      "/cli_inject.csv --inject=ppn-flip@moon:0.1",
                  2, "--inject");
    expectFailure(kEatbatch, 2, "usage");
    expectFailure(kEatbatch + " --workloads=nonexistent --out=" +
                      ::testing::TempDir() + "/cli_wl.csv",
                  1, "unknown workload");
}

TEST(CliEatsim, RejectsBadL3Flags)
{
    // Unknown mode, policy without the cache substrate, streak without
    // the promote policy, and a zero streak: usage errors before any
    // simulation starts.
    expectFailure(kEatsim + " --workload=mcf --l3=bogus", 2,
                  "unknown l3 mode");
    expectFailure(kEatsim + " --workload=mcf --l3-policy=walk", 2,
                  "--l3-policy requires --l3=cache");
    expectFailure(kEatsim + " --workload=mcf --l3=dram --l3-policy=walk",
                  2, "--l3-policy requires --l3=cache");
    expectFailure(kEatsim +
                      " --workload=mcf --l3=cache --l3-promote-streak=3",
                  2, "--l3-promote-streak requires --l3-policy=promote");
    expectFailure(kEatsim + " --workload=mcf --l3=cache "
                            "--l3-policy=promote --l3-promote-streak=0",
                  2, "must be positive");
}

TEST(CliEatbatch, RejectsBadL3Flags)
{
    const std::string base =
        kEatbatch + " --out=" + ::testing::TempDir() + "/cli_l3.csv";
    expectFailure(base + " --l3=bogus", 2, "unknown l3 mode");
    expectFailure(base + " --l3-policy=walk", 2,
                  "--l3-policy requires --l3=cache");
    expectFailure(base + " --l3=cache --l3-promote-streak=2", 2,
                  "--l3-promote-streak requires --l3-policy=promote");
    expectFailure(base + " --l3=cache --l3-policy=promote "
                         "--l3-promote-streak=0",
                  2, "must be positive");
}

TEST(CliEatbatch, ResumeRefusesAForeignL3Fingerprint)
{
    // The sweep's l3 knobs are part of the checkpoint fingerprint:
    // resuming a journal under a different tier configuration must be
    // refused outright, not silently mixed into the CSV.
    const std::string csv = ::testing::TempDir() + "/cli_l3fp.csv";
    const std::string journal = ::testing::TempDir() + "/cli_l3fp.journal";
    std::remove(csv.c_str());
    std::remove(journal.c_str());

    const std::string base = kEatbatch + " --out=" + csv +
                             " --workloads=mcf --orgs=4KB"
                             " --instructions=20000 --fast-forward=2000"
                             " --checkpoint=" + journal;
    const CmdResult seeded = run(base);
    ASSERT_EQ(seeded.exitCode, 0) << seeded.output;
    expectFailure(base + " --l3=cache --resume", 1,
                  "belongs to a different campaign");
}

TEST(CliEatperf, RequiresAnOutputPath)
{
    expectFailure(kEatperf, 2, "usage");
    expectFailure(kEatperf + " --jobs=nope", 2, "jobs");
}

TEST(CliEatfuzz, RejectsBadUsage)
{
    expectFailure(kEatfuzz + " --frobnicate", 2, "usage");
    expectFailure(kEatfuzz + " --runs=few", 2, "--runs");
    expectFailure(kEatfuzz + " --jobs=0", 2, "jobs");
    expectFailure(kEatfuzz + " --replay=x --self-test", 2,
                  "mutually exclusive");
}

TEST(CliEatfuzz, FailsOnMissingOrEmptyCorpus)
{
    expectFailure(kEatfuzz + " --shrink=" + ::testing::TempDir() +
                      "/no_such_seed.json",
                  1, "cannot open seed file");
    const std::string empty = ::testing::TempDir() + "/empty_corpus";
    ASSERT_EQ(run("mkdir -p " + empty).exitCode, 0);
    expectFailure(kEatfuzz + " --replay=" + empty, 1, "seed files");
}

TEST(CliEatbatch, RejectsBadCampaignFlags)
{
    const std::string base =
        kEatbatch + " --out=" + ::testing::TempDir() + "/cli_camp.csv";
    expectFailure(base + " --retries=garbage", 2, "--retries");
    expectFailure(base + " --retries=99", 2, "cap");
    expectFailure(base + " --checkpoint=", 2, "--checkpoint");
}

TEST(CliEatfuzz, RejectsBadCampaignFlags)
{
    expectFailure(kEatfuzz + " --retries=nope", 2, "--retries");
    expectFailure(kEatfuzz + " --retries=99", 2, "cap");
    expectFailure(kEatfuzz + " --checkpoint=", 2, "--checkpoint");
    expectFailure(kEatfuzz + " --resume", 2, "requires --checkpoint");
    expectFailure(kEatfuzz + " --checkpoint=" + ::testing::TempDir() +
                      "/cli_camp.jsonl --self-test",
                  2, "campaign mode");
    expectFailure(kEatfuzz + " --checkpoint=" + ::testing::TempDir() +
                      "/cli_camp.jsonl --resume --shrink=x",
                  2, "campaign mode");
}

TEST(CliEatsim, RejectsBadVirtualizationFlags)
{
    expectFailure(kEatsim + " --workload=mcf --vm=bogus", 2,
                  "unknown host-table mode");
    expectFailure(kEatsim + " --workload=mcf --host-pages=2m", 2,
                  "--host-pages requires --vm");
    expectFailure(kEatsim + " --workload=mcf --vm --host-pages=3k", 2,
                  "unknown host page size");
    expectFailure(kEatsim + " --workload=mcf --vm --cores=0", 2,
                  "out of range");
}

TEST(CliEatsim, RejectsBadCoherenceFlags)
{
    expectFailure(kEatsim +
                      " --workload=mcf --cores=2 --coherence=bogus",
                  2, "unknown coherence mode");
    expectFailure(kEatsim + " --workload=mcf --coherence=hw", 2,
                  "--coherence requires --cores/--mix");
}

TEST(CliEatsim, ReportsNestedPagingCosts)
{
    const CmdResult result = run(
        kEatsim + " --workload=mcf --vm --instructions=20000");
    EXPECT_EQ(result.exitCode, 0) << result.output;
    EXPECT_NE(result.output.find("nested paging:"), std::string::npos)
        << result.output;
}

TEST(CliEatbatch, RejectsBadVirtualizationAndCoherenceFlags)
{
    const std::string base =
        kEatbatch + " --out=" + ::testing::TempDir() + "/cli_vm.csv";
    expectFailure(base + " --vm=bogus", 2, "unknown host-table mode");
    expectFailure(base + " --host-pages=2m", 2,
                  "--host-pages requires --vm");
    expectFailure(base + " --coherence=hw", 2,
                  "--coherence requires --cores/--mix");
    expectFailure(base + " --cores=2 --mix=mcf,canneal --coherence=no",
                  2, "unknown coherence mode");
}

TEST(CliEatsim, RejectsBadProvenanceFlags)
{
    expectFailure(kEatsim + " --workload=mcf --prov-sample=abc", 2,
                  "--prov-sample");
    expectFailure(kEatsim + " --workload=mcf --provenance=" +
                      ::testing::TempDir() +
                      "/cli_prov.jsonl --prov-sample=0",
                  2, "must be >= 1");
    expectFailure(kEatsim + " --workload=mcf --prov-sample=4", 2,
                  "requires --provenance");
    expectFailure(kEatsim + " --workload=mcf --provenance=", 2,
                  "empty output path");
}

TEST(CliEatreport, RejectsBadUsage)
{
    expectFailure(kEatreport, 2, "usage");
    expectFailure(kEatreport + " --frobnicate", 2, "usage");
    // --telemetry cross-checking is part of reconciliation; alone it
    // would silently do nothing.
    expectFailure(kEatreport + " --prov=x --telemetry=y", 2,
                  "--reconcile");
}

TEST(CliEatreport, FailsOnMissingInput)
{
    expectFailure(kEatreport + " --prov=" + ::testing::TempDir() +
                      "/no_such.prov.jsonl",
                  1, "cannot open provenance file");
}

TEST(CliEatreport, FailsOnMalformedJsonl)
{
    // A malformed line followed by more data is corruption, not a torn
    // final write — hard error naming the line.
    const std::string bad = ::testing::TempDir() + "/bad.prov.jsonl";
    {
        std::ofstream out(bad, std::ios::trunc);
        out << "this is not json\n";
        out << "{\"schema\":\"eat.prov.event\",\"v\":1,\"i\":0,"
               "\"k\":\"interval\",\"core\":0,\"interval\":0,"
               "\"pj\":0}\n";
    }
    expectFailure(kEatreport + " --prov=" + bad, 1,
                  "malformed JSON line");

    // A stream of only garbage: the torn-line tolerance consumes the
    // one bad line, leaving no records at all.
    const std::string empty = ::testing::TempDir() + "/torn.prov.jsonl";
    {
        std::ofstream out(empty, std::ios::trunc);
        out << "{\"schema\":\"eat.prov.ev"; // torn mid-write
    }
    expectFailure(kEatreport + " --prov=" + empty, 1,
                  "no provenance records");

    // Valid JSON of the wrong schema is someone else's file.
    const std::string wrong = ::testing::TempDir() + "/wrong.prov.jsonl";
    {
        std::ofstream out(wrong, std::ios::trunc);
        out << "{\"schema\":\"eat.telemetry\",\"v\":2}\n";
    }
    expectFailure(kEatreport + " --prov=" + wrong, 1, "unknown schema");
}

TEST(CliEatperf, RejectsBadBaselineFlags)
{
    expectFailure(kEatperf + " --out=x --max-regression=abc", 2,
                  "--max-regression");
    expectFailure(kEatperf + " --out=x --max-regression=1.5", 2,
                  "--max-regression");
}

TEST(CliEatfuzz, RejectsMalformedSeedFile)
{
    const std::string path = ::testing::TempDir() + "/bad_seed.json";
    {
        std::ofstream out(path, std::ios::trunc);
        out << "{\"schema\": \"eat.qa.scenario\", \"v\": 1}";
    }
    expectFailure(kEatfuzz + " --replay=" + path, 1, "missing");
}

} // namespace
