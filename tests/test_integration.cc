/**
 * @file
 * Cross-configuration integration properties, parameterized over the
 * TLB-intensive workloads: the qualitative relationships the paper's
 * evaluation establishes must hold for every workload model.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace eat::sim
{
namespace
{

/**
 * One short simulation per (workload, organization), cached across test
 * cases so the whole parameterized suite stays fast.
 */
const SimResult &
cachedRun(const std::string &workload, core::MmuOrg org)
{
    static std::map<std::string, SimResult> cache;
    const std::string key =
        workload + "/" + std::string(core::orgName(org));
    auto it = cache.find(key);
    if (it == cache.end()) {
        SimConfig cfg;
        cfg.workload = *workloads::findWorkload(workload);
        cfg.mmu = core::MmuConfig::make(org);
        cfg.fastForwardInstructions = 200'000;
        cfg.simulateInstructions = 3'000'000;
        it = cache.emplace(key, simulate(cfg)).first;
    }
    return it->second;
}

class IntensiveWorkloadTest
    : public ::testing::TestWithParam<const char *>
{
};

TEST_P(IntensiveWorkloadTest, IsTlbIntensiveWith4KPages)
{
    // The paper's bar: > 5 L1 TLB misses per kilo-instruction.
    const auto &r = cachedRun(GetParam(), core::MmuOrg::Base4K);
    EXPECT_GT(r.stats.l1Mpki(), 5.0);
}

TEST_P(IntensiveWorkloadTest, ThpCutsMissCycles)
{
    const auto &base = cachedRun(GetParam(), core::MmuOrg::Base4K);
    const auto &thp = cachedRun(GetParam(), core::MmuOrg::Thp);
    EXPECT_LT(thp.missCyclesPerKiloInstr(),
              base.missCyclesPerKiloInstr());
}

TEST_P(IntensiveWorkloadTest, TlbLiteNeverCostsMoreThanThp)
{
    // On a 3 M-instruction window Lite may still be in its hold-all-
    // ways phase (equal energy); it must never cost more than THP plus
    // the odd reconfiguration fill.
    const auto &thp = cachedRun(GetParam(), core::MmuOrg::Thp);
    const auto &lite = cachedRun(GetParam(), core::MmuOrg::TlbLite);
    EXPECT_LE(lite.energyPerKiloInstr(),
              thp.energyPerKiloInstr() * 1.02);
}

TEST_P(IntensiveWorkloadTest, TlbLiteBarelyAffectsMissCycles)
{
    // Paper: TLB_Lite moves the average miss-cycle share from 16.6% to
    // 17.2%. Allow a generous 2x per-workload bound on short runs.
    const auto &thp = cachedRun(GetParam(), core::MmuOrg::Thp);
    const auto &lite = cachedRun(GetParam(), core::MmuOrg::TlbLite);
    EXPECT_LE(lite.missCyclesPerKiloInstr(),
              2.0 * thp.missCyclesPerKiloInstr() + 5.0);
}

TEST_P(IntensiveWorkloadTest, RmmEliminatesPageWalks)
{
    const auto &rmm = cachedRun(GetParam(), core::MmuOrg::Rmm);
    EXPECT_LT(rmm.stats.l2Mpki(), 0.2);
    const auto &rmmLite = cachedRun(GetParam(), core::MmuOrg::RmmLite);
    EXPECT_LT(rmmLite.stats.l2Mpki(), 0.2);
}

TEST_P(IntensiveWorkloadTest, RmmLiteIsTheMostEnergyEfficientLiteDesign)
{
    const auto &thp = cachedRun(GetParam(), core::MmuOrg::Thp);
    const auto &rmmLite = cachedRun(GetParam(), core::MmuOrg::RmmLite);
    const auto &tlbLite = cachedRun(GetParam(), core::MmuOrg::TlbLite);
    EXPECT_LT(rmmLite.energyPerKiloInstr(), thp.energyPerKiloInstr());
    EXPECT_LT(rmmLite.energyPerKiloInstr(),
              tlbLite.energyPerKiloInstr());
}

TEST_P(IntensiveWorkloadTest, RmmLiteCutsMissCyclesVsRmm)
{
    const auto &rmm = cachedRun(GetParam(), core::MmuOrg::Rmm);
    const auto &rmmLite = cachedRun(GetParam(), core::MmuOrg::RmmLite);
    EXPECT_LE(rmmLite.missCyclesPerKiloInstr(),
              rmm.missCyclesPerKiloInstr() + 1.0);
}

TEST_P(IntensiveWorkloadTest, EnergyBreakdownIsConsistent)
{
    for (const auto org : core::allOrgs()) {
        const auto &r = cachedRun(GetParam(), org);
        const auto &b = r.energy.breakdown;
        // Category sums must equal the per-structure rows.
        double structTotal = 0.0;
        for (const auto &row : r.energy.structs)
            structTotal += row.readEnergy + row.writeEnergy;
        EXPECT_NEAR(structTotal, b.total(), b.total() * 1e-9);
        // Only range configurations spend range-walk energy.
        const bool hasRanges = r.numRanges > 0;
        EXPECT_EQ(b.rangeWalkMem > 0.0, hasRanges)
            << core::orgName(org);
    }
}

TEST_P(IntensiveWorkloadTest, CycleModelMatchesMissCounts)
{
    for (const auto org : core::allOrgs()) {
        const auto &s = cachedRun(GetParam(), org).stats;
        EXPECT_EQ(s.l1MissCycles, s.l1Misses * 7);
        EXPECT_EQ(s.walkCycles, s.l2Misses * 50);
        EXPECT_EQ(s.l1Hits + s.l2Hits + s.l2Misses, s.memOps);
    }
}

INSTANTIATE_TEST_SUITE_P(AllIntensive, IntensiveWorkloadTest,
                         ::testing::Values("astar", "cactusADM",
                                           "GemsFDTD", "mcf", "omnetpp",
                                           "zeusmp", "mummer", "canneal"));

TEST(IntegrationAverages, HeadlineShapesHold)
{
    // Suite-wide averages at full window length (Lite needs enough
    // intervals to converge): TLB_Lite and RMM_Lite must deliver their
    // headline savings bands vs THP.
    auto longRun = [](const std::string &workload, core::MmuOrg org) {
        SimConfig cfg;
        cfg.workload = *workloads::findWorkload(workload);
        cfg.mmu = core::MmuConfig::make(org);
        cfg.fastForwardInstructions = 500'000;
        cfg.simulateInstructions = 12'000'000;
        return simulate(cfg);
    };
    double liteRatio = 0.0, rmmLiteRatio = 0.0, ppRatio = 0.0;
    const auto &suite = workloads::tlbIntensiveSuite();
    for (const auto &w : suite) {
        const double thp =
            longRun(w.name, core::MmuOrg::Thp).energyPerKiloInstr();
        liteRatio +=
            longRun(w.name, core::MmuOrg::TlbLite).energyPerKiloInstr() /
            thp;
        rmmLiteRatio +=
            longRun(w.name, core::MmuOrg::RmmLite).energyPerKiloInstr() /
            thp;
        ppRatio +=
            longRun(w.name, core::MmuOrg::TlbPP).energyPerKiloInstr() /
            thp;
    }
    const auto n = static_cast<double>(suite.size());
    // Paper: TLB_Lite -23%, TLB_PP -43%, RMM_Lite -71% vs THP. Allow
    // wide bands (synthetic workloads).
    EXPECT_LT(liteRatio / n, 0.90);
    EXPECT_GT(liteRatio / n, 0.55);
    EXPECT_LT(ppRatio / n, 0.75);
    EXPECT_LT(rmmLiteRatio / n, 0.55);
}

} // namespace
} // namespace eat::sim
