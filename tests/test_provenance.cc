/**
 * @file
 * Tests of the energy-provenance tracer and its load-bearing promise:
 * summing the traced events reproduces the aggregate energy meters
 * bit for bit — an exact ==, not an epsilon.
 *
 *  - every organization reconciles (in-memory sink, sampling off);
 *  - a 2-core multicore run with shootdown churn reconciles per core;
 *  - sampling thins the written stream but never the summary totals;
 *  - the JSONL stream round-trips: eatreport --reconcile re-sums the
 *    file and agrees, and rejects sampled streams;
 *  - the summary JSON record parses back to the exact doubles;
 *  - the shared log2 bucket helper is what both sides assume.
 */

#include <cstdio>
#include <string>

#include <sys/wait.h>

#include <gtest/gtest.h>

#include "mc/mc_simulator.hh"
#include "mc/mix.hh"
#include "obs/json.hh"
#include "obs/provenance.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace eat
{
namespace
{

sim::SimConfig
provConfig(const std::string &workload, core::MmuOrg org,
           InstrCount instructions = 400'000)
{
    sim::SimConfig cfg;
    cfg.workload = *workloads::findWorkload(workload);
    cfg.mmu = core::MmuConfig::make(org);
    cfg.fastForwardInstructions = 50'000;
    cfg.simulateInstructions = instructions;
    cfg.provenanceEnabled = true;
    return cfg;
}

/** The exact-reconciliation assertion both drivers must satisfy. */
void
expectReconciles(const obs::ProvCoreTotals &totals,
                 const sim::SimResult &r, const std::string &what)
{
    // Every meter-backed energy row must match the event accumulators
    // exactly: same counts, same doubles.
    unsigned matched = 0;
    for (const auto &row : r.energy.structs) {
        const auto idx = static_cast<unsigned>(row.id);
        if (idx >= obs::kProvMeteredStructs)
            continue;
        const auto &t = totals.structs[idx];
        EXPECT_EQ(t.reads, row.reads) << what << ": " << row.name;
        EXPECT_EQ(t.writes, row.writes) << what << ": " << row.name;
        EXPECT_EQ(t.readPj, row.readEnergy) << what << ": " << row.name;
        EXPECT_EQ(t.writePj, row.writeEnergy)
            << what << ": " << row.name;
        ++matched;
    }
    EXPECT_GT(matched, 0u) << what;

    EXPECT_EQ(totals.shootdowns, r.stats.shootdownsInitiated) << what;
    EXPECT_EQ(totals.shootdownPj, r.stats.shootdownEnergyPj) << what;
}

TEST(Provenance, EveryOrgReconcilesBitExactly)
{
    for (const auto org : core::allOrgs()) {
        const auto r =
            sim::simulate(provConfig("mcf", org));
        const std::string what(core::orgName(org));
        ASSERT_TRUE(r.provenanceEnabled) << what;
        ASSERT_EQ(r.provenance.cores.size(), 1u) << what;
        EXPECT_EQ(r.provenance.translations, r.stats.memOps) << what;
        EXPECT_EQ(r.provenance.translations,
                  r.provenance.translationsSampled)
            << what;
        expectReconciles(r.provenance.cores[0], r, what);
        // The canonical re-sum equals the meter total bit for bit.
        EXPECT_EQ(r.provenance.cores[0].canonicalDynamicPj(),
                  r.totalEnergy())
            << what;
        // Histograms saw every translation.
        EXPECT_EQ(r.provenance.walkDepth.total(),
                  r.provenance.translations)
            << what;
    }
}

TEST(Provenance, MulticoreWithShootdownsReconcilesPerCore)
{
    mc::McConfig cfg;
    cfg.base = provConfig("mcf", core::MmuOrg::RmmLite, 300'000);
    const auto mix = mc::parseMixSpec("mcf,astar");
    ASSERT_TRUE(mix.ok());
    cfg.mix = mix.value();
    cfg.base.workload = cfg.mix.front();
    cfg.cores = 2;
    cfg.remapInterval = 50'000;

    const auto r = mc::mcSimulate(cfg);
    ASSERT_TRUE(r.provenanceEnabled);
    ASSERT_EQ(r.perCore.size(), 2u);
    ASSERT_EQ(r.provenance.cores.size(), 2u);

    std::uint64_t memOps = 0;
    std::uint64_t shootdowns = 0;
    for (unsigned c = 0; c < 2; ++c) {
        expectReconciles(r.provenance.cores[c], r.perCore[c],
                         "core " + std::to_string(c));
        EXPECT_EQ(r.provenance.cores[c].canonicalDynamicPj(),
                  r.perCore[c].totalEnergy())
            << "core " << c;
        memOps += r.perCore[c].stats.memOps;
        shootdowns += r.provenance.cores[c].shootdowns;
    }
    EXPECT_EQ(r.provenance.translations, memOps);
    EXPECT_GT(shootdowns, 0u) << "churn must have broadcast";
    EXPECT_GT(r.provenance.shootdownFanout.total(), 0u);
}

TEST(Provenance, SamplingThinsTheStreamButNotTheTotals)
{
    const std::string path =
        ::testing::TempDir() + "/sampled.prov.jsonl";

    auto cfg = provConfig("astar", core::MmuOrg::Thp);
    const auto full = sim::simulate(cfg);

    cfg.provenancePath = path;
    cfg.provenanceSampleEvery = 8;
    const auto sampled = sim::simulate(cfg);
    std::remove(path.c_str());

    ASSERT_TRUE(sampled.provenanceEnabled);
    const auto &s = sampled.provenance;
    EXPECT_EQ(s.sampleEvery, 8u);
    EXPECT_EQ(s.translations, full.provenance.translations);
    // 1-in-8, first translation sampled: ceil(n / 8).
    EXPECT_EQ(s.translationsSampled, (s.translations + 7) / 8);
    EXPECT_LT(s.eventsWritten, s.events);
    // Accumulation is sampling-blind: totals match the unsampled run
    // (same seed, same stream) exactly.
    ASSERT_EQ(s.cores.size(), full.provenance.cores.size());
    EXPECT_EQ(s.cores[0].canonicalDynamicPj(),
              full.provenance.cores[0].canonicalDynamicPj());
    EXPECT_EQ(s.events, full.provenance.events);
    expectReconciles(s.cores[0], sampled, "sampled");
}

TEST(Provenance, SummaryJsonRoundTripsExactly)
{
    const auto r = sim::simulate(
        provConfig("omnetpp", core::MmuOrg::TlbLite, 300'000));
    ASSERT_TRUE(r.provenanceEnabled);

    const std::string json = provSummaryToJson(r.provenance);
    const auto parsed = obs::parseJson(json);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    const obs::JsonValue &o = parsed.value();

    EXPECT_EQ(o.find("schema")->string, obs::kProvSummarySchema);
    EXPECT_EQ(static_cast<std::uint64_t>(o.find("translations")->number),
              r.provenance.translations);

    const obs::JsonValue *cores = o.find("cores");
    ASSERT_TRUE(cores && cores->isArray());
    ASSERT_EQ(cores->array.size(), r.provenance.cores.size());
    // %.17g must reconstruct the accumulated double bit for bit.
    EXPECT_EQ(cores->array[0].find("dynamic_pj")->number,
              r.provenance.cores[0].canonicalDynamicPj());
}

TEST(Provenance, EatreportReconcilesTheStreamEndToEnd)
{
    const std::string prov =
        ::testing::TempDir() + "/e2e.prov.jsonl";
    auto cfg = provConfig("mcf", core::MmuOrg::RmmLite, 300'000);
    cfg.provenancePath = prov;
    const auto r = sim::simulate(cfg);
    ASSERT_TRUE(r.provenanceEnabled);

    const std::string cmd =
        std::string(EAT_EATREPORT_PATH) + " --prov=" + prov +
        " --reconcile 2>&1";
    FILE *pipe = popen(cmd.c_str(), "r");
    ASSERT_NE(pipe, nullptr);
    std::string output;
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, pipe)) > 0)
        output.append(buffer, n);
    const int status = pclose(pipe);
    std::remove(prov.c_str());

    ASSERT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << output;
    EXPECT_NE(output.find("bit for bit"), std::string::npos) << output;
}

TEST(Provenance, Log2BucketsMatchTheHistogramContract)
{
    EXPECT_EQ(obs::provLog2Bucket(0.0), 0u);
    EXPECT_EQ(obs::provLog2Bucket(1.0), 1u);
    EXPECT_EQ(obs::provLog2Bucket(2.0), 2u);
    EXPECT_EQ(obs::provLog2Bucket(3.0), 2u);
    EXPECT_EQ(obs::provLog2Bucket(4.0), 3u);
    EXPECT_EQ(obs::provLog2Bucket(1023.0), 10u);
    EXPECT_EQ(obs::provLog2Bucket(1024.0), 11u);
}

} // namespace
} // namespace eat
