/**
 * @file
 * Tests for the OS memory-management model: allocation policies (4 KB
 * only, transparent huge pages, eager paging) and their invariants.
 */

#include <gtest/gtest.h>

#include "vm/memory_manager.hh"

namespace eat::vm
{
namespace
{

TEST(MemoryManager, Only4KPolicyMapsEverything4K)
{
    MemoryManager mm(OsPolicy{}, 64_MiB);
    const auto region = mm.mmap(8_MiB);
    EXPECT_EQ(region.bytes, 8_MiB);
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size4K), 2048u);
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size2M), 0u);
    EXPECT_TRUE(mm.rangeTable().empty());

    // Every page translates.
    for (Addr v = region.vbase; v < region.vlimit(); v += 4096)
        ASSERT_TRUE(mm.pageTable().translate(v).has_value());
}

TEST(MemoryManager, ThpPromotesAlignedChunks)
{
    OsPolicy policy;
    policy.transparentHugePages = true;
    MemoryManager mm(policy, 64_MiB);
    const auto region = mm.mmap(8_MiB);
    // The region is 2 MB aligned, so the whole interior promotes.
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size2M), 4u);
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size4K), 0u);
    auto t = mm.pageTable().translate(region.vbase + 3_MiB);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->size, PageSize::Size2M);
}

TEST(MemoryManager, ThpLeavesSmallRegions4K)
{
    OsPolicy policy;
    policy.transparentHugePages = true;
    MemoryManager mm(policy, 64_MiB);
    (void)mm.mmap(1_MiB);
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size2M), 0u);
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size4K), 256u);
}

TEST(MemoryManager, ThpCoverageControlsPromotion)
{
    OsPolicy policy;
    policy.transparentHugePages = true;
    policy.thpCoverage = 0.5;
    MemoryManager mm(policy, 256_MiB, /*seed=*/9);
    (void)mm.mmap(64_MiB); // 32 eligible chunks
    const auto huge = mm.pageTable().pageCount(PageSize::Size2M);
    EXPECT_GT(huge, 8u);
    EXPECT_LT(huge, 24u);
    // Unpromoted chunks are fully backed by 4 KB pages.
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size4K),
              (32 - huge) * 512);
}

TEST(MemoryManager, EagerPagingCreatesOneRangePerRegion)
{
    OsPolicy policy;
    policy.eagerPaging = true;
    MemoryManager mm(policy, 128_MiB);
    const auto a = mm.mmap(8_MiB);
    const auto b = mm.mmap(4_MiB);
    EXPECT_EQ(mm.rangeTable().size(), 2u);
    EXPECT_DOUBLE_EQ(mm.rangeCoverage(), 1.0);

    // The range translation agrees with the page table everywhere —
    // the redundancy invariant of RMM.
    for (const auto &region : {a, b}) {
        for (Addr v = region.vbase; v < region.vlimit(); v += 4096) {
            auto pt = mm.pageTable().translate(v);
            auto rt = mm.rangeTable().lookup(v);
            ASSERT_TRUE(pt.has_value());
            ASSERT_TRUE(rt.has_value());
            ASSERT_EQ(pt->paddr(v), rt->paddr(v));
        }
    }
}

TEST(MemoryManager, EagerPlusThpUsesHugePages)
{
    OsPolicy policy;
    policy.eagerPaging = true;
    policy.transparentHugePages = true;
    MemoryManager mm(policy, 64_MiB);
    (void)mm.mmap(8_MiB);
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size2M), 4u);
    EXPECT_EQ(mm.rangeTable().size(), 1u);
}

TEST(MemoryManager, EagerRangesPerRegionSplits)
{
    OsPolicy policy;
    policy.eagerPaging = true;
    policy.eagerRangesPerRegion = 4;
    MemoryManager mm(policy, 64_MiB);
    // Imperfect eager paging: the region becomes 4 physically separate
    // pieces (a spacer frame keeps first-fit from re-merging them),
    // but coverage stays complete.
    const auto region = mm.mmap(8_MiB);
    EXPECT_EQ(mm.rangeTable().size(), 4u);
    EXPECT_DOUBLE_EQ(mm.rangeCoverage(), 1.0);
    for (Addr v = region.vbase; v < region.vlimit(); v += 4096)
        ASSERT_TRUE(mm.rangeTable().lookup(v).has_value());
}

TEST(MemoryManager, FragmentedPoolBreaksEagerContiguity)
{
    OsPolicy policy;
    policy.eagerPaging = true;
    MemoryManager mm(policy, 256_MiB);
    Rng rng(5);
    mm.physicalMemory().fragment(0.05, rng);
    // Eager allocation of a large region must now fail: no contiguous
    // extent remains (the sensitivity experiment's setup).
    EXPECT_THROW((void)mm.mmap(64_MiB), std::runtime_error);
}

TEST(MemoryManager, RegionsAreDisjointWithGuardGaps)
{
    MemoryManager mm(OsPolicy{}, 64_MiB);
    const auto a = mm.mmap(1_MiB);
    const auto b = mm.mmap(1_MiB);
    EXPECT_GE(b.vbase, a.vlimit() + 2_MiB);
    EXPECT_EQ(mm.regions().size(), 2u);
    EXPECT_EQ(mm.mappedBytes(), 2_MiB);
}

TEST(MemoryManager, DemoteRegionBreaksHugePages)
{
    OsPolicy policy;
    policy.transparentHugePages = true;
    MemoryManager mm(policy, 64_MiB);
    const auto region = mm.mmap(8_MiB);
    EXPECT_EQ(mm.demoteRegion(region), 4u);
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size2M), 0u);
    EXPECT_EQ(mm.pageTable().pageCount(PageSize::Size4K), 2048u);
}

TEST(MemoryManager, ExhaustionIsFatal)
{
    MemoryManager mm(OsPolicy{}, 4_MiB);
    EXPECT_THROW((void)mm.mmap(64_MiB), std::runtime_error);
}

TEST(MemoryManager, TinyRequestsRoundUpToOnePage)
{
    MemoryManager mm(OsPolicy{}, 4_MiB);
    const auto r = mm.mmap(1);
    EXPECT_EQ(r.bytes, 4096u);
}

} // namespace
} // namespace eat::vm
