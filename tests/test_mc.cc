/**
 * @file
 * Tests for the multicore simulation subsystem (src/mc/): the
 * acceptance properties of the scheduler, ASID tagging, shootdown
 * accounting, and checker attribution.
 *
 *  - mix-spec parsing accepts the suite and rejects garbage;
 *  - --cores 1 with a one-workload mix reproduces the single-core
 *    simulator bit for bit (digest comparison, the regression gate);
 *  - a 4-core mixed run is deterministic across repeats;
 *  - ASID-tagged TLBs beat ctx-flush on L1 misses on the same mix;
 *  - shootdown counters balance exactly;
 *  - a fault injected into one core's TLB is caught and attributed to
 *    that core, with every other core's checker silent.
 */

#include <gtest/gtest.h>

#include "check/shadow_checker.hh"
#include "mc/mc_simulator.hh"
#include "mc/mix.hh"
#include "qa/oracles.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace eat::mc
{
namespace
{

/** A small but representative base config for mc runs. */
sim::SimConfig
baseConfig(core::MmuOrg org)
{
    sim::SimConfig cfg;
    cfg.mmu = core::MmuConfig::make(org);
    cfg.simulateInstructions = 60'000;
    cfg.fastForwardInstructions = 5'000;
    cfg.seed = 42;
    cfg.checkLevel = check::CheckLevel::Full;
    return cfg;
}

McConfig
mcConfig(core::MmuOrg org, unsigned cores, const std::string &mix)
{
    McConfig cfg;
    cfg.base = baseConfig(org);
    auto parsed = parseMixSpec(mix);
    EXPECT_TRUE(parsed.ok()) << parsed.status().message();
    cfg.mix = parsed.value();
    cfg.base.workload = cfg.mix.front();
    cfg.cores = cores;
    return cfg;
}

TEST(MixSpec, ParsesTheSuiteAndRejectsGarbage)
{
    const auto ok = parseMixSpec("mcf,canneal,omnetpp,astar");
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().size(), 4u);
    EXPECT_EQ(ok.value()[0].name, "mcf");
    EXPECT_EQ(mixName(ok.value()), "mcf,canneal,omnetpp,astar");

    EXPECT_FALSE(parseMixSpec("").ok());
    EXPECT_FALSE(parseMixSpec("mcf,,canneal").ok());
    EXPECT_FALSE(parseMixSpec("nosuchworkload").ok());

    EXPECT_TRUE(parseCoreCount("4").ok());
    EXPECT_FALSE(parseCoreCount("0").ok());
    EXPECT_FALSE(parseCoreCount("99").ok());
    EXPECT_FALSE(parseCoreCount("two").ok());
}

TEST(McSimulator, OneCoreIsBitIdenticalToTheSingleCoreSimulator)
{
    // The regression gate: the multicore driver at --cores 1 must
    // reproduce sim::simulate() exactly, for every organization.
    for (const auto org : core::allOrgs()) {
        sim::SimConfig single = baseConfig(org);
        const auto spec = workloads::findWorkload("mcf");
        ASSERT_TRUE(spec.has_value());
        single.workload = *spec;

        McConfig mc = mcConfig(org, 1, "mcf");
        const auto mcResult = mcSimulate(mc);
        ASSERT_EQ(mcResult.perCore.size(), 1u);

        EXPECT_EQ(qa::resultDigest(sim::simulate(single)),
                  qa::resultDigest(mcResult.perCore[0]))
            << "org " << core::orgName(org);
    }
}

TEST(McSimulator, FourCoreMixedRunIsDeterministic)
{
    McConfig cfg =
        mcConfig(core::MmuOrg::TlbLite, 4, "mcf,canneal,omnetpp,astar");
    cfg.quantumInstructions = 10'000;
    cfg.remapInterval = 25'000;

    const auto a = mcSimulate(cfg);
    const auto b = mcSimulate(cfg);
    EXPECT_EQ(qa::mcResultDigest(a), qa::mcResultDigest(b));

    // Per-core and aggregate reporting exist and are coherent.
    ASSERT_EQ(a.perCore.size(), 4u);
    ASSERT_EQ(a.tasks.size(), 4u);
    EXPECT_GT(a.totalInstructions(), 0u);
    EXPECT_GT(a.totalEnergyPj(), 0.0);
    EXPECT_GT(a.aggregateMpki(), 0.0);
    EXPECT_GT(a.shootdownEvents, 0u);
    std::uint64_t perCoreInstr = 0;
    for (const auto &c : a.perCore)
        perCoreInstr += c.stats.instructions;
    EXPECT_EQ(perCoreInstr, a.totalInstructions());
}

TEST(McSimulator, AsidTaggingBeatsCtxFlushOnL1Misses)
{
    // Short quanta keep the returning task's entries alive in ASID
    // mode; ctx-flush throws them away at every switch.
    McConfig cfg = mcConfig(core::MmuOrg::Thp, 2, "omnetpp,astar");
    cfg.quantumInstructions = 2'000;

    McConfig flush = cfg;
    flush.ctxFlush = true;

    auto l1Misses = [](const McResult &r) {
        std::uint64_t total = 0;
        for (const auto &c : r.perCore)
            total += c.stats.l1Misses;
        return total;
    };
    EXPECT_LT(l1Misses(mcSimulate(cfg)), l1Misses(mcSimulate(flush)));
}

TEST(McSimulator, ShootdownAccountingBalances)
{
    McConfig cfg = mcConfig(core::MmuOrg::Thp, 4, "mcf,canneal");
    cfg.quantumInstructions = 10'000;
    cfg.remapInterval = 20'000;

    const auto r = mcSimulate(cfg);
    ASSERT_GT(r.shootdownEvents, 0u);

    std::uint64_t initiated = 0, received = 0, invalidations = 0,
                  cycles = 0;
    double energy = 0.0;
    for (const auto &c : r.perCore) {
        initiated += c.stats.shootdownsInitiated;
        received += c.stats.shootdownsReceived;
        invalidations += c.stats.shootdownInvalidations;
        cycles += c.stats.shootdownCycles;
        energy += c.stats.shootdownEnergyPj;
    }
    // Every broadcast is initiated by exactly one core and received by
    // every other core; the invalidation total matches the broadcast
    // tally, and the initiating cores were charged for the IPIs.
    EXPECT_EQ(initiated, r.shootdownEvents);
    EXPECT_EQ(received, r.shootdownEvents * (cfg.cores - 1));
    EXPECT_EQ(invalidations, r.shootdownInvalidations);
    EXPECT_GT(cycles, 0u);
    EXPECT_GT(energy, 0.0);
}

TEST(McSimulator, InjectedFaultIsAttributedToItsCore)
{
    McConfig cfg = mcConfig(core::MmuOrg::Base4K, 2, "mcf,canneal");
    cfg.base.faultSpec = "ppn-flip@l1-4k:0.005";
    cfg.faultCore = 1;

    const auto r = mcSimulate(cfg);
    ASSERT_EQ(r.perCore.size(), 2u);
    // The checker is on by default in mc runs and catches the
    // corruption on the injected core...
    EXPECT_GT(r.perCore[1].check.translationChecks, 0u);
    EXPECT_GT(r.perCore[1].check.mismatches(), 0u);
    EXPECT_EQ(r.perCore[1].firstMismatch.rfind("core1: ", 0), 0u)
        << r.perCore[1].firstMismatch;
    // ...while the untouched core stays silent.
    EXPECT_EQ(r.perCore[0].check.mismatches(), 0u);
    EXPECT_TRUE(r.perCore[0].firstMismatch.empty());
}

TEST(McSimulator, SharedAddressSpaceMakesContextSwitchesFree)
{
    // Shared mode: every task runs in the same address space under
    // ASID 0, so no context switch ever reloads the page table.
    McConfig cfg = mcConfig(core::MmuOrg::Thp, 2, "mcf,canneal");
    cfg.sharedAddressSpace = true;
    cfg.quantumInstructions = 10'000;

    const auto r = mcSimulate(cfg);
    for (const auto &c : r.perCore)
        EXPECT_EQ(c.stats.contextSwitches, 0u);
    for (const auto &t : r.tasks)
        EXPECT_EQ(t.asid, 0u);
}

} // namespace
} // namespace eat::mc
