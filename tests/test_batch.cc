/**
 * @file
 * Tests for the fault-tolerant batch runner: grids complete, a failing
 * or hanging cell costs one row (not the sweep), the CSV on disk is
 * always complete, --resume reuses finished work, and the -jN process
 * pool changes wall clock only — row order and every non-timing column
 * are byte-identical to a serial sweep.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/batch.hh"

namespace eat::sim
{
namespace
{

class BatchTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        csvPath_ = ::testing::TempDir() + "eat_batch_test.csv";
        std::remove(csvPath_.c_str());
    }

    void
    TearDown() override
    {
        std::remove(csvPath_.c_str());
        std::remove((csvPath_ + ".tmp").c_str());
    }

    /** Small, fast sweep options. */
    BatchOptions
    quickOptions()
    {
        BatchOptions options;
        options.workloadNames = {"mcf", "astar"};
        options.orgs = {core::MmuOrg::Thp, core::MmuOrg::Rmm};
        options.base.fastForwardInstructions = 10'000;
        options.base.simulateInstructions = 100'000;
        options.outPath = csvPath_;
        return options;
    }

    /** Read the CSV back as raw lines. */
    std::vector<std::string>
    csvLines()
    {
        std::ifstream in(csvPath_);
        std::vector<std::string> lines;
        std::string line;
        while (std::getline(in, line))
            lines.push_back(line);
        return lines;
    }

    std::string csvPath_;
};

TEST_F(BatchTest, CompletesAFullGrid)
{
    std::ostringstream log;
    const auto r = runBatch(quickOptions(), log);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().ok, 4u);
    EXPECT_EQ(r.value().failed, 0u);
    EXPECT_EQ(r.value().timedOut, 0u);
    EXPECT_EQ(r.value().total(), 4u);

    const auto lines = csvLines();
    ASSERT_EQ(lines.size(), 5u); // header + 4 rows
    EXPECT_EQ(lines[0].substr(0, 19), "workload,org,status");
    for (std::size_t i = 1; i < lines.size(); ++i)
        EXPECT_NE(lines[i].find(",ok,"), std::string::npos) << lines[i];
}

TEST_F(BatchTest, FailingRunDoesNotAbortTheSweep)
{
    auto options = quickOptions();
    options.failCell = "mcf:RMM";
    std::ostringstream log;
    const auto r = runBatch(options, log);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().ok, 3u);
    EXPECT_EQ(r.value().failed, 1u);
    EXPECT_EQ(r.value().total(), 4u);

    // The CSV is complete and intact: all four rows, the failed one
    // labeled with its error, and no leftover temp file.
    const auto lines = csvLines();
    ASSERT_EQ(lines.size(), 5u);
    unsigned failedRows = 0;
    for (const auto &line : lines) {
        if (line.find("mcf,RMM,failed") == 0) {
            ++failedRows;
            EXPECT_NE(line.find("deliberate failure"),
                      std::string::npos);
        }
    }
    EXPECT_EQ(failedRows, 1u);
    std::ifstream tmp(csvPath_ + ".tmp");
    EXPECT_FALSE(tmp.good());
}

TEST_F(BatchTest, WatchdogKillsAHangingRun)
{
    auto options = quickOptions();
    options.workloadNames = {"mcf"};
    options.orgs = {core::MmuOrg::Thp, core::MmuOrg::Rmm};
    options.failCell = "mcf:THP:hang";
    options.timeoutSeconds = 1;
    std::ostringstream log;
    const auto r = runBatch(options, log);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().timedOut, 1u);
    EXPECT_EQ(r.value().ok, 1u);

    const auto lines = csvLines();
    ASSERT_EQ(lines.size(), 3u);
    bool sawTimeout = false;
    for (const auto &line : lines)
        sawTimeout = sawTimeout ||
                     line.find("mcf,THP,timeout") == 0;
    EXPECT_TRUE(sawTimeout);
}

TEST_F(BatchTest, ResumeReusesCompletedRows)
{
    auto options = quickOptions();
    options.failCell = "astar:THP";
    std::ostringstream log1;
    const auto first = runBatch(options, log1);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().ok, 3u);
    EXPECT_EQ(first.value().failed, 1u);

    // Second sweep with --resume: only the failed cell re-runs.
    options.failCell.clear();
    options.resume = true;
    std::ostringstream log2;
    const auto second = runBatch(options, log2);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().resumed, 3u);
    EXPECT_EQ(second.value().ok, 1u);
    EXPECT_EQ(second.value().failed, 0u);

    const auto lines = csvLines();
    ASSERT_EQ(lines.size(), 5u);
    for (std::size_t i = 1; i < lines.size(); ++i)
        EXPECT_NE(lines[i].find(",ok,"), std::string::npos) << lines[i];
}

TEST_F(BatchTest, RejectsUnknownWorkloadUpFront)
{
    auto options = quickOptions();
    options.workloadNames = {"mcf", "no-such-workload"};
    std::ostringstream log;
    const auto r = runBatch(options, log);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.status().message().find("no-such-workload"),
              std::string::npos);
    // Nothing ran, nothing was written.
    std::ifstream out(csvPath_);
    EXPECT_FALSE(out.good());
}

TEST_F(BatchTest, RejectsMissingOutputPath)
{
    auto options = quickOptions();
    options.outPath.clear();
    std::ostringstream log;
    EXPECT_FALSE(runBatch(options, log).ok());
}

/** Split a CSV line of unquoted cells (all these tests produce). */
std::vector<std::string>
splitCells(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream is(line);
    while (std::getline(is, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.push_back("");
    return cells;
}

TEST_F(BatchTest, ParallelSweepIsByteIdenticalToSerial)
{
    // Same grid at -j1 and -j4: identical row order, and every column
    // byte-for-byte equal except the wall-clock-derived ones
    // (wall_seconds, sim_kips).
    auto serialOptions = quickOptions();
    serialOptions.jobs = 1;
    std::ostringstream log1;
    ASSERT_TRUE(runBatch(serialOptions, log1).ok());
    const auto serial = csvLines();

    const std::string parallelPath =
        ::testing::TempDir() + "eat_batch_test_j4.csv";
    auto parallelOptions = quickOptions();
    parallelOptions.jobs = 4;
    parallelOptions.outPath = parallelPath;
    std::ostringstream log4;
    const auto r = runBatch(parallelOptions, log4);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().ok, 4u);

    std::vector<std::string> parallel;
    {
        std::ifstream in(parallelPath);
        std::string line;
        while (std::getline(in, line))
            parallel.push_back(line);
    }
    std::remove(parallelPath.c_str());
    std::remove((parallelPath + ".tmp").c_str());

    ASSERT_EQ(serial.size(), parallel.size());
    ASSERT_EQ(serial.size(), 5u); // header + 4 rows
    EXPECT_EQ(serial[0], parallel[0]);
    const auto &timing = batchTimingColumns();
    for (std::size_t i = 1; i < serial.size(); ++i) {
        const auto a = splitCells(serial[i]);
        const auto b = splitCells(parallel[i]);
        ASSERT_EQ(a.size(), b.size()) << serial[i];
        for (std::size_t col = 0; col < a.size(); ++col) {
            if (std::find(timing.begin(), timing.end(), col) !=
                timing.end())
                continue;
            EXPECT_EQ(a[col], b[col])
                << "row " << i << " col " << col << " ("
                << batchCsvHeader()[col] << ")";
        }
    }
}

TEST_F(BatchTest, ResumeAtADifferentJobCountIsByteIdentical)
{
    // The uninterrupted reference: the whole grid serially (-j1).
    const std::string referencePath =
        ::testing::TempDir() + "eat_batch_test_ref.csv";
    auto referenceOptions = quickOptions();
    referenceOptions.jobs = 1;
    referenceOptions.outPath = referencePath;
    std::ostringstream log0;
    ASSERT_TRUE(runBatch(referenceOptions, log0).ok());
    std::vector<std::string> reference;
    {
        std::ifstream in(referencePath);
        std::string line;
        while (std::getline(in, line))
            reference.push_back(line);
    }
    std::remove(referencePath.c_str());

    // A partial sweep at -j2: one cell fails, three complete.
    auto options = quickOptions();
    options.jobs = 2;
    options.failCell = "astar:RMM";
    std::ostringstream log1;
    const auto first = runBatch(options, log1);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().ok, 3u);
    EXPECT_EQ(first.value().failed, 1u);

    // Resume at -j3: only the failed cell re-runs.
    options.failCell.clear();
    options.resume = true;
    options.jobs = 3;
    std::ostringstream log2;
    const auto second = runBatch(options, log2);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().resumed, 3u);
    EXPECT_EQ(second.value().ok, 1u);

    // The stitched-together CSV must be byte-identical to the
    // uninterrupted serial sweep outside the timing columns: same row
    // order, same metrics, no trace of the interruption.
    const auto resumed = csvLines();
    ASSERT_EQ(resumed.size(), reference.size());
    EXPECT_EQ(resumed[0], reference[0]);
    const auto &timing = batchTimingColumns();
    for (std::size_t i = 1; i < resumed.size(); ++i) {
        const auto a = splitCells(reference[i]);
        const auto b = splitCells(resumed[i]);
        ASSERT_EQ(a.size(), b.size()) << resumed[i];
        for (std::size_t col = 0; col < a.size(); ++col) {
            if (std::find(timing.begin(), timing.end(), col) !=
                timing.end())
                continue;
            EXPECT_EQ(a[col], b[col])
                << "row " << i << " col " << col << " ("
                << batchCsvHeader()[col] << ")";
        }
    }
}

TEST_F(BatchTest, HangingCellInAFullPoolCostsOnlyThatCell)
{
    // All four cells in flight at once; one hangs. The watchdog kills
    // exactly that child and the other three land normally.
    auto options = quickOptions();
    options.jobs = 4;
    options.failCell = "mcf:THP:hang";
    options.timeoutSeconds = 2;
    std::ostringstream log;
    const auto r = runBatch(options, log);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().ok, 3u);
    EXPECT_EQ(r.value().timedOut, 1u);
    EXPECT_EQ(r.value().total(), 4u);

    const auto lines = csvLines();
    ASSERT_EQ(lines.size(), 5u);
    unsigned okRows = 0, timeoutRows = 0;
    for (std::size_t i = 1; i < lines.size(); ++i) {
        if (lines[i].find(",ok,") != std::string::npos)
            ++okRows;
        if (lines[i].find("mcf,THP,timeout") == 0)
            ++timeoutRows;
    }
    EXPECT_EQ(okRows, 3u);
    EXPECT_EQ(timeoutRows, 1u);
}

TEST_F(BatchTest, AutoJobsSweepCompletes)
{
    auto options = quickOptions();
    options.jobs = 0; // auto: hardware concurrency
    std::ostringstream log;
    const auto r = runBatch(options, log);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().ok, 4u);
}

TEST(ParseJobs, AcceptsCountsUpToFourTimesHardwareConcurrency)
{
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    const auto one = parseJobs("1");
    ASSERT_TRUE(one.ok());
    EXPECT_EQ(one.value(), 1u);
    const auto cap = parseJobs(std::to_string(4 * hw));
    ASSERT_TRUE(cap.ok());
    EXPECT_EQ(cap.value(), 4 * hw);
}

TEST(ParseJobs, RejectsZeroGarbageAndOversizedCounts)
{
    EXPECT_FALSE(parseJobs("0").ok());
    EXPECT_FALSE(parseJobs("").ok());
    EXPECT_FALSE(parseJobs("abc").ok());
    EXPECT_FALSE(parseJobs("4x").ok());
    EXPECT_FALSE(parseJobs("-2").ok());
    const unsigned hw =
        std::max(1u, std::thread::hardware_concurrency());
    EXPECT_FALSE(parseJobs(std::to_string(4 * hw + 1)).ok());
}

TEST(BatchHeader, TimingColumnsAreExactlyWallSecondsAndSimKips)
{
    const auto &header = batchCsvHeader();
    const auto &timing = batchTimingColumns();
    ASSERT_EQ(timing.size(), 2u);
    EXPECT_EQ(header[timing[0]], "wall_seconds");
    EXPECT_EQ(header[timing[1]], "sim_kips");
}

TEST_F(BatchTest, HeaderMatchesRowWidth)
{
    std::ostringstream log;
    auto options = quickOptions();
    options.workloadNames = {"mcf"};
    options.orgs = {core::MmuOrg::Thp};
    ASSERT_TRUE(runBatch(options, log).ok());

    const auto lines = csvLines();
    ASSERT_EQ(lines.size(), 2u);
    const auto count = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(lines[0]), count(lines[1]));
}

} // namespace
} // namespace eat::sim
