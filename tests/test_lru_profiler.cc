/**
 * @file
 * Tests for Lite's lru-distance-counters, including the paper's Figure-6
 * example and the prediction-exactness property: the counters predict
 * exactly the misses a downsized TLB would have suffered on the same
 * stream (a consequence of the LRU stack property).
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.hh"
#include "lite/lru_profiler.hh"
#include "tlb/set_assoc_tlb.hh"

namespace eat::lite
{
namespace
{

TEST(LruProfiler, Figure6BandMapping)
{
    // The paper's 8-way example: a hit with distance 7, 6, 4-5, or 0-3
    // from the LRU position increases counters [0], [1], [2], [3].
    EXPECT_EQ(LruDistanceProfiler::band(7, 8), 0u);
    EXPECT_EQ(LruDistanceProfiler::band(6, 8), 1u);
    EXPECT_EQ(LruDistanceProfiler::band(5, 8), 2u);
    EXPECT_EQ(LruDistanceProfiler::band(4, 8), 2u);
    EXPECT_EQ(LruDistanceProfiler::band(3, 8), 3u);
    EXPECT_EQ(LruDistanceProfiler::band(2, 8), 3u);
    EXPECT_EQ(LruDistanceProfiler::band(1, 8), 3u);
    EXPECT_EQ(LruDistanceProfiler::band(0, 8), 3u);
}

TEST(LruProfiler, FourWayBandMapping)
{
    EXPECT_EQ(LruDistanceProfiler::band(3, 4), 0u);
    EXPECT_EQ(LruDistanceProfiler::band(2, 4), 1u);
    EXPECT_EQ(LruDistanceProfiler::band(1, 4), 2u);
    EXPECT_EQ(LruDistanceProfiler::band(0, 4), 2u);
}

TEST(LruProfiler, CounterCountIsLogPlusOne)
{
    EXPECT_EQ(LruDistanceProfiler(8).counters().size(), 4u);
    EXPECT_EQ(LruDistanceProfiler(4).counters().size(), 3u);
    EXPECT_EQ(LruDistanceProfiler(1).counters().size(), 1u);
}

TEST(LruProfiler, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(LruDistanceProfiler(6), std::logic_error);
    EXPECT_THROW(LruDistanceProfiler::band(0, 3), std::logic_error);
    EXPECT_THROW(LruDistanceProfiler::band(4, 4), std::logic_error);
}

TEST(LruProfiler, LostHitsSumsBandsBelowTarget)
{
    LruDistanceProfiler p(8);
    // 10 MRU hits, 20 at distance 6, 30 at distances 4-5, 40 deep.
    for (int i = 0; i < 10; ++i)
        p.recordHit(7, 8);
    for (int i = 0; i < 20; ++i)
        p.recordHit(6, 8);
    for (int i = 0; i < 30; ++i)
        p.recordHit(4, 8);
    for (int i = 0; i < 40; ++i)
        p.recordHit(1, 8);
    EXPECT_EQ(p.totalHits(), 100u);
    EXPECT_EQ(p.lostHits(8, 8), 0u);
    EXPECT_EQ(p.lostHits(8, 4), 40u);
    EXPECT_EQ(p.lostHits(8, 2), 70u);
    EXPECT_EQ(p.lostHits(8, 1), 90u);
}

TEST(LruProfiler, TracksReducedActiveWays)
{
    LruDistanceProfiler p(8);
    // With only 2 active ways, distances are in [0, 2).
    p.recordHit(1, 2); // MRU -> band 0
    p.recordHit(0, 2); // band 1
    EXPECT_EQ(p.lostHits(2, 1), 1u);
    EXPECT_EQ(p.lostHits(2, 2), 0u);
}

TEST(LruProfiler, ResetClears)
{
    LruDistanceProfiler p(4);
    p.recordHit(0, 4);
    p.reset();
    EXPECT_EQ(p.totalHits(), 0u);
    EXPECT_EQ(p.lostHits(4, 1), 0u);
}

/**
 * Property: for any access stream, actualMisses(full) +
 * lostHits(full -> w) == actualMisses(w-way TLB) on the same stream.
 * This exactness is what lets Lite's decision algorithm predict the
 * potential MPKI of a smaller configuration without simulating it.
 */
class ProfilerExactnessTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(ProfilerExactnessTest, PredictsDownsizedMisses)
{
    const unsigned sets = std::get<0>(GetParam());
    const unsigned targetWays = std::get<1>(GetParam());
    constexpr unsigned kFullWays = 4;

    tlb::SetAssocTlb full("full", sets * kFullWays, kFullWays, 12);
    tlb::SetAssocTlb small("small", sets * targetWays, targetWays, 12);
    LruDistanceProfiler profiler(kFullWays);

    Rng rng(sets * 131 + targetWays);
    std::uint64_t fullMisses = 0;
    std::uint64_t smallMisses = 0;
    for (int i = 0; i < 6000; ++i) {
        // Mix of hot pages and a uniform tail.
        const Addr page = rng.chance(0.7) ? rng.below(sets * 3)
                                          : rng.below(sets * 40);
        const Addr vaddr = page << 12;

        auto res = full.lookup(vaddr);
        if (res.hit) {
            profiler.recordHit(res.lruDistance, kFullWays);
        } else {
            ++fullMisses;
            full.fill(tlb::makePageEntry(vaddr, 0x1000,
                                         vm::PageSize::Size4K));
        }

        if (small.lookup(vaddr).hit) {
        } else {
            ++smallMisses;
            small.fill(tlb::makePageEntry(vaddr, 0x1000,
                                          vm::PageSize::Size4K));
        }
    }

    EXPECT_EQ(fullMisses + profiler.lostHits(kFullWays, targetWays),
              smallMisses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ProfilerExactnessTest,
    ::testing::Combine(::testing::Values(1u, 4u, 16u),
                       ::testing::Values(1u, 2u, 4u)));

} // namespace
} // namespace eat::lite
