/**
 * @file
 * Tests for hardware translation coherence (mc/coherence.hh) and the
 * IPI-vs-hw differential properties the model is built around:
 *
 *  - the coherence filter tracks sharers per address space, stays
 *    conservative (sharers are never cleared), and versions remaps;
 *  - IPI and hw runs of the same mix produce identical architectural
 *    outcomes — same translations, same invalidations, same per-core
 *    result digests (mcOutcomeDigest equality);
 *  - each mode's cost book is conserved exactly and the other mode's
 *    book stays zero;
 *  - fault attribution still works under hw coherence.
 */

#include <gtest/gtest.h>

#include "mc/coherence.hh"
#include "mc/mc_simulator.hh"
#include "mc/mix.hh"
#include "qa/oracles.hh"

namespace eat::mc
{
namespace
{

TEST(CoherenceFilter, TracksSharersAndVersionsPerSpace)
{
    CoherenceFilter filter(4);
    EXPECT_EQ(filter.sharersOf(7), 0u);
    EXPECT_EQ(filter.versionOf(7), 0u);

    filter.noteScheduled(7, 0);
    filter.noteScheduled(7, 2);
    filter.noteScheduled(7, 2); // idempotent
    filter.noteScheduled(3, 1);
    EXPECT_EQ(filter.sharersOf(7), 0b101u);
    EXPECT_EQ(filter.sharersOf(3), 0b010u);

    const auto probe = filter.probe(7);
    EXPECT_EQ(probe.sharers, 0b101u);
    EXPECT_EQ(probe.version, 1u);
    EXPECT_EQ(filter.versionOf(7), 1u);
    // Spaces version independently.
    EXPECT_EQ(filter.versionOf(3), 0u);
    EXPECT_EQ(filter.probe(7).version, 2u);
}

TEST(CoherenceFilter, StaysConservativeAcrossProbes)
{
    // A real directory never learns about silent evictions: once a
    // core shared a space it stays a sharer until re-registered, so a
    // probe after a probe still targets it.
    CoherenceFilter filter(2);
    filter.noteScheduled(0, 1);
    EXPECT_EQ(filter.probe(0).sharers, 0b10u);
    EXPECT_EQ(filter.probe(0).sharers, 0b10u);
}

TEST(CoherenceFilter, SharerCountCountsBits)
{
    EXPECT_EQ(sharerCount(0), 0u);
    EXPECT_EQ(sharerCount(0b1), 1u);
    EXPECT_EQ(sharerCount(0b1011), 3u);
    EXPECT_EQ(sharerCount(0xffffu), 16u);
}

TEST(CoherenceMode, ParsesNamesAndRejectsGarbage)
{
    EXPECT_EQ(coherenceModeFromName("ipi").value(),
              McConfig::CoherenceMode::Ipi);
    EXPECT_EQ(coherenceModeFromName("hw").value(),
              McConfig::CoherenceMode::Hw);
    EXPECT_FALSE(coherenceModeFromName("bogus").ok());
    EXPECT_FALSE(coherenceModeFromName("").ok());
    EXPECT_EQ(coherenceModeName(McConfig::CoherenceMode::Ipi), "ipi");
    EXPECT_EQ(coherenceModeName(McConfig::CoherenceMode::Hw), "hw");
}

// --- differential end-to-end properties ---

/** A small mc run with enough churn for real shootdown traffic. */
McConfig
churnConfig(unsigned cores, const std::string &mix,
            McConfig::CoherenceMode mode)
{
    McConfig cfg;
    cfg.base.mmu = core::MmuConfig::make(core::MmuOrg::Thp);
    cfg.base.simulateInstructions = 60'000;
    cfg.base.fastForwardInstructions = 5'000;
    cfg.base.seed = 42;
    cfg.base.checkLevel = check::CheckLevel::Full;
    auto parsed = parseMixSpec(mix);
    EXPECT_TRUE(parsed.ok()) << parsed.status().message();
    cfg.mix = parsed.value();
    cfg.base.workload = cfg.mix.front();
    cfg.cores = cores;
    cfg.quantumInstructions = 10'000;
    cfg.remapInterval = 20'000;
    cfg.coherence = mode;
    return cfg;
}

TEST(TranslationCoherence, HwAndIpiProduceIdenticalOutcomes)
{
    // The load-bearing differential: the coherence mode changes only
    // the cost book. Same translations, same invalidations, same
    // context switches — the outcome digest (which excludes both cost
    // books) must match bit for bit.
    const auto ipi = mcSimulate(
        churnConfig(4, "mcf,canneal", McConfig::CoherenceMode::Ipi));
    const auto hw = mcSimulate(
        churnConfig(4, "mcf,canneal", McConfig::CoherenceMode::Hw));

    ASSERT_GT(ipi.shootdownEvents, 0u);
    EXPECT_EQ(qa::mcOutcomeDigest(ipi), qa::mcOutcomeDigest(hw));
    EXPECT_EQ(ipi.shootdownEvents, hw.shootdownEvents);
    EXPECT_EQ(ipi.shootdownInvalidations, hw.shootdownInvalidations);
    // But the full result digests differ: the books are not the same.
    EXPECT_NE(qa::mcResultDigest(ipi), qa::mcResultDigest(hw));
}

TEST(TranslationCoherence, IpiBookBalancesAndHwBookStaysZero)
{
    const auto r = mcSimulate(
        churnConfig(4, "mcf,canneal", McConfig::CoherenceMode::Ipi));
    ASSERT_GT(r.shootdownEvents, 0u);
    EXPECT_EQ(r.coherence, McConfig::CoherenceMode::Ipi);
    EXPECT_EQ(r.coherenceProbes, 0u);
    EXPECT_EQ(r.coherenceTargetedCores, 0u);

    std::uint64_t initiated = 0, received = 0;
    for (const auto &c : r.perCore) {
        initiated += c.stats.shootdownsInitiated;
        received += c.stats.shootdownsReceived;
        EXPECT_EQ(c.stats.cohProbes, 0u);
        EXPECT_EQ(c.stats.cohTargetedCores, 0u);
        EXPECT_EQ(c.stats.cohInvalidationsReceived, 0u);
        EXPECT_EQ(c.stats.cohCycles, 0u);
        EXPECT_EQ(c.stats.cohEnergyPj, 0.0);
    }
    EXPECT_EQ(initiated, r.shootdownEvents);
    EXPECT_EQ(received, r.shootdownEvents * 3u);
}

TEST(TranslationCoherence, HwBookBalancesAndIpiBookStaysZero)
{
    const auto cfg =
        churnConfig(4, "mcf,canneal", McConfig::CoherenceMode::Hw);
    const auto r = mcSimulate(cfg);
    ASSERT_GT(r.shootdownEvents, 0u);
    EXPECT_EQ(r.coherence, McConfig::CoherenceMode::Hw);
    // One filter probe per remap event; the probe targets only the
    // cores registered as sharers, never more than cores - 1.
    EXPECT_EQ(r.coherenceProbes, r.shootdownEvents);
    EXPECT_LE(r.coherenceTargetedCores,
              r.shootdownEvents * (cfg.cores - 1));

    std::uint64_t probes = 0, targeted = 0, cohReceived = 0;
    for (const auto &c : r.perCore) {
        EXPECT_EQ(c.stats.shootdownsInitiated, 0u);
        EXPECT_EQ(c.stats.shootdownsReceived, 0u);
        EXPECT_EQ(c.stats.shootdownCycles, 0u);
        EXPECT_EQ(c.stats.shootdownEnergyPj, 0.0);
        probes += c.stats.cohProbes;
        targeted += c.stats.cohTargetedCores;
        cohReceived += c.stats.cohInvalidationsReceived;
        // Integer-exact initiator-side cycle conservation per core.
        EXPECT_EQ(c.stats.cohCycles,
                  cfg.base.mmu.cohProbeCycles * c.stats.cohProbes +
                      cfg.base.mmu.cohPerCoreCycles *
                          c.stats.cohTargetedCores);
    }
    EXPECT_EQ(probes, r.coherenceProbes);
    EXPECT_EQ(targeted, r.coherenceTargetedCores);
    // Every targeted core took exactly one invalidation per probe.
    EXPECT_EQ(cohReceived, r.coherenceTargetedCores);
}

TEST(TranslationCoherence, HwProbesCostLessThanIpiBroadcasts)
{
    // The paper's point, in pJ: targeted probes beat broadcast IPIs.
    const auto ipi = mcSimulate(
        churnConfig(4, "mcf,canneal", McConfig::CoherenceMode::Ipi));
    const auto hw = mcSimulate(
        churnConfig(4, "mcf,canneal", McConfig::CoherenceMode::Hw));

    auto book = [](const McResult &r) {
        double pj = 0.0;
        std::uint64_t cycles = 0;
        for (const auto &c : r.perCore) {
            pj += c.stats.shootdownEnergyPj + c.stats.cohEnergyPj;
            cycles += c.stats.shootdownCycles + c.stats.cohCycles;
        }
        return std::pair{pj, cycles};
    };
    const auto [ipiPj, ipiCycles] = book(ipi);
    const auto [hwPj, hwCycles] = book(hw);
    EXPECT_GT(ipiPj, 0.0);
    EXPECT_LT(hwPj, ipiPj);
    EXPECT_LT(hwCycles, ipiCycles);
}

TEST(TranslationCoherence, SingleCoreRunsChargeNeitherBook)
{
    auto cfg = churnConfig(1, "mcf", McConfig::CoherenceMode::Hw);
    const auto r = mcSimulate(cfg);
    EXPECT_EQ(r.coherenceProbes, 0u);
    for (const auto &c : r.perCore) {
        EXPECT_EQ(c.stats.cohCycles, 0u);
        EXPECT_EQ(c.stats.shootdownCycles, 0u);
    }
}

TEST(TranslationCoherence, FaultAttributionSurvivesHwMode)
{
    auto cfg =
        churnConfig(2, "mcf,canneal", McConfig::CoherenceMode::Hw);
    cfg.base.mmu = core::MmuConfig::make(core::MmuOrg::Base4K);
    cfg.base.faultSpec = "ppn-flip@l1-4k:0.005";
    cfg.faultCore = 1;

    const auto r = mcSimulate(cfg);
    ASSERT_EQ(r.perCore.size(), 2u);
    EXPECT_GT(r.perCore[1].check.mismatches(), 0u);
    EXPECT_EQ(r.perCore[1].firstMismatch.rfind("core1: ", 0), 0u)
        << r.perCore[1].firstMismatch;
    EXPECT_EQ(r.perCore[0].check.mismatches(), 0u);
}

TEST(TranslationCoherence, CombinesWithNestedPaging)
{
    // `--vm --coherence=hw` is the paper's full configuration: the
    // differential outcome property must hold under nested paging too.
    auto ipiCfg =
        churnConfig(2, "mcf,canneal", McConfig::CoherenceMode::Ipi);
    ipiCfg.base.mmu.vmEnabled = true;
    auto hwCfg = ipiCfg;
    hwCfg.coherence = McConfig::CoherenceMode::Hw;

    const auto ipi = mcSimulate(ipiCfg);
    const auto hw = mcSimulate(hwCfg);
    ASSERT_GT(ipi.shootdownEvents, 0u);
    EXPECT_EQ(qa::mcOutcomeDigest(ipi), qa::mcOutcomeDigest(hw));
    for (const auto &c : hw.perCore)
        EXPECT_GT(c.stats.hostWalks, 0u);
}

} // namespace
} // namespace eat::mc
