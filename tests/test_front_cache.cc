/**
 * @file
 * Tests for the MMU's last-translation front cache.
 *
 * The front cache is a simulator fast path whose contract is total
 * outcome invisibility: every counter, histogram, energy accumulator,
 * and digest must be bit-identical with the cache on or off. The tests
 * here enforce that contract two ways:
 *
 *  - twin runs: one scripted op sequence driven into two Mmus over the
 *    same OS tables, front cache on vs off, compared field by field —
 *    each scenario targets one invalidation edge (set-conflicting
 *    fill, ASID switch, shootdown, Lite resize/interval boundary);
 *  - whole-simulation digests: qa::resultDigest equality across all
 *    six organizations, a 2-core mix, and a fault-injected run.
 *
 * In -DEAT_FRONT_CACHE=OFF builds the "on" twin silently runs without
 * the cache; the equality assertions still hold (trivially) and the
 * non-vacuousness assertions are skipped via kFrontCacheCompiledIn.
 */

#include <gtest/gtest.h>

#include "core/mmu.hh"
#include "mc/mc_simulator.hh"
#include "mc/mix.hh"
#include "qa/oracles.hh"
#include "sim/simulator.hh"
#include "vm/page_table.hh"
#include "vm/range_table.hh"
#include "workloads/suite.hh"

namespace eat::core
{
namespace
{

using vm::PageSize;

/** Assert every simulated outcome of @p a and @p b is identical. */
void
expectSameOutcome(const Mmu &a, const Mmu &b)
{
    const auto &sa = a.stats();
    const auto &sb = b.stats();
    EXPECT_EQ(sa.instructions, sb.instructions);
    EXPECT_EQ(sa.memOps, sb.memOps);
    EXPECT_EQ(sa.l1Hits, sb.l1Hits);
    EXPECT_EQ(sa.l1Misses, sb.l1Misses);
    EXPECT_EQ(sa.l2Hits, sb.l2Hits);
    EXPECT_EQ(sa.l2Misses, sb.l2Misses);
    EXPECT_EQ(sa.walkMemRefs, sb.walkMemRefs);
    EXPECT_EQ(sa.rangeWalks, sb.rangeWalks);
    EXPECT_EQ(sa.rangeWalkMemRefs, sb.rangeWalkMemRefs);
    EXPECT_EQ(sa.l1MissCycles, sb.l1MissCycles);
    EXPECT_EQ(sa.walkCycles, sb.walkCycles);
    EXPECT_EQ(sa.contextSwitches, sb.contextSwitches);
    EXPECT_EQ(sa.shootdownsReceived, sb.shootdownsReceived);
    EXPECT_EQ(sa.shootdownInvalidations, sb.shootdownInvalidations);
    EXPECT_EQ(sa.hitsBySource, sb.hitsBySource);
    EXPECT_EQ(sa.l1WayLookups4K.toString(), sb.l1WayLookups4K.toString());
    EXPECT_EQ(sa.l1WayLookups2M.toString(), sb.l1WayLookups2M.toString());

    const auto ea = a.energyReport();
    const auto eb = b.energyReport();
    // Exact equality, not tolerance: the replay path must add the very
    // same doubles in the very same order as the full probe.
    EXPECT_EQ(ea.breakdown.total(), eb.breakdown.total());
    EXPECT_EQ(ea.staticEnergyGated, eb.staticEnergyGated);
    EXPECT_EQ(ea.staticEnergyFull, eb.staticEnergyFull);
    EXPECT_EQ(ea.leakagePower, eb.leakagePower);
}

/** Two MMUs over one address space: [0] front on, [1] front off. */
class FrontCacheTwins : public ::testing::Test
{
  protected:
    void
    makeTwins(MmuOrg org)
    {
        cfg = MmuConfig::make(org);
        on = std::make_unique<Mmu>(cfg, pt, &rt);
        off = std::make_unique<Mmu>(cfg, pt, &rt);
        off->setFrontCacheEnabled(false);
    }

    void
    access(Addr vaddr)
    {
        on->access(vaddr);
        off->access(vaddr);
    }

    void
    tick(InstrCount n)
    {
        on->tick(n);
        off->tick(n);
    }

    vm::PageTable pt;
    vm::RangeTable rt;
    MmuConfig cfg;
    std::unique_ptr<Mmu> on, off;
};

TEST_F(FrontCacheTwins, RepeatHitsReplayExactly)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    makeTwins(MmuOrg::Base4K);
    for (int i = 0; i < 100; ++i) {
        access(0x1000 + (i % 7) * 8);
        tick(3);
    }
    if (kFrontCacheCompiledIn)
        EXPECT_GT(on->frontCacheHits(), 0u);
    EXPECT_EQ(off->frontCacheHits(), 0u);
    expectSameOutcome(*on, *off);
}

TEST_F(FrontCacheTwins, SetConflictingFillInvalidates)
{
    // Two pages aliasing into one L1 set: filling the second must kill
    // the first page's memo (its way may have been evicted, and the
    // MRU certainly moved). The replay guard must fall back to a full
    // probe; outcomes stay identical either way.
    const unsigned sets = 16; // 64-entry, 4-way L1 -> 16 sets
    const Addr a = 0x10000;
    const Addr b = a + sets * 0x1000; // same set index, different tag
    pt.map(a, 0x200000, PageSize::Size4K);
    pt.map(b, 0x300000, PageSize::Size4K);
    makeTwins(MmuOrg::Base4K);
    for (int i = 0; i < 50; ++i) {
        access(a + 8);  // prime the memo
        access(b + 16); // conflicting fill / restamp in the same set
        access(a + 24); // must observe the post-fill truth
        tick(1);
    }
    expectSameOutcome(*on, *off);
}

TEST_F(FrontCacheTwins, AsidSwitchInvalidates)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    vm::PageTable pt2;
    pt2.map(0x1000, 0x500000, PageSize::Size4K);
    makeTwins(MmuOrg::Base4K);
    for (int i = 0; i < 20; ++i) {
        access(0x1000 + 8 * i);
        on->switchContext(1, pt2, nullptr, true);
        off->switchContext(1, pt2, nullptr, true);
        access(0x1000 + 8 * i); // same vaddr, other address space
        on->switchContext(0, pt, nullptr, true);
        off->switchContext(0, pt, nullptr, true);
        tick(2);
    }
    expectSameOutcome(*on, *off);
}

TEST_F(FrontCacheTwins, ShootdownInvalidates)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(0x2000, 0x300000, PageSize::Size4K);
    makeTwins(MmuOrg::Base4K);
    for (int i = 0; i < 20; ++i) {
        access(0x1000);
        access(0x2000);
        // Drop page 0x1000; the next access must walk again.
        on->shootdownInvalidate(0x1000, 0x2000, 0, false);
        off->shootdownInvalidate(0x1000, 0x2000, 0, false);
        access(0x1000);
        access(0x2000); // untouched mapping keeps hitting
        tick(1);
    }
    expectSameOutcome(*on, *off);
}

TEST_F(FrontCacheTwins, LiteResizeAndIntervalBoundary)
{
    // TLB_Lite resizes its L1 at interval boundaries; a memoized MRU
    // hit from the pre-resize generation must not replay afterwards
    // (the way may be disabled, the charge coefficient differs).
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(0x400000, 0x600000, PageSize::Size4K);
    makeTwins(MmuOrg::TlbLite);
    const InstrCount interval = cfg.lite.intervalInstructions;
    // A hot loop narrow enough that Lite wants to shrink the L1.
    for (int round = 0; round < 6; ++round) {
        for (InstrCount i = 0; i < interval; i += 4) {
            access(0x1000 + (i % 16) * 8);
            tick(4); // crosses the interval boundary mid-round
        }
    }
    if (kFrontCacheCompiledIn)
        EXPECT_GT(on->frontCacheHits(), 0u);
    expectSameOutcome(*on, *off);
}

// --------------------------------------------------------------------
// Whole-simulation digest identity.
// --------------------------------------------------------------------

sim::SimConfig
smallConfig(MmuOrg org, bool frontCache)
{
    const auto spec = workloads::findWorkload("mcf");
    EXPECT_TRUE(spec.has_value());
    sim::SimConfig cfg;
    cfg.workload = *spec;
    cfg.mmu = MmuConfig::make(org);
    cfg.seed = 42;
    cfg.fastForwardInstructions = 5'000;
    cfg.simulateInstructions = 60'000;
    cfg.frontCache = frontCache;
    return cfg;
}

TEST(FrontCacheDigest, IdenticalAcrossAllOrgs)
{
    for (const auto org : allOrgs()) {
        const auto onRun = sim::simulate(smallConfig(org, true));
        const auto offRun = sim::simulate(smallConfig(org, false));
        EXPECT_EQ(qa::resultDigest(onRun), qa::resultDigest(offRun))
            << "org " << orgName(org);
        EXPECT_EQ(offRun.frontCacheHits, 0u) << "org " << orgName(org);
        if (kFrontCacheCompiledIn) {
            EXPECT_GT(onRun.frontCacheHits, 0u)
                << "org " << orgName(org);
        }
    }
}

TEST(FrontCacheDigest, IdenticalOnTwoCoreMix)
{
    const auto mix = mc::parseMixSpec("mcf,canneal");
    ASSERT_TRUE(mix.ok());
    auto run = [&](bool frontCache) {
        mc::McConfig mcc;
        mcc.base = smallConfig(MmuOrg::TlbLite, frontCache);
        mcc.base.workload = mix.value().front();
        mcc.cores = 2;
        mcc.mix = mix.value();
        return mc::mcSimulate(mcc);
    };
    const auto onRun = run(true);
    const auto offRun = run(false);
    EXPECT_EQ(qa::mcResultDigest(onRun), qa::mcResultDigest(offRun));
    if (kFrontCacheCompiledIn) {
        std::uint64_t hits = 0;
        for (const auto &core : onRun.perCore)
            hits += core.frontCacheHits;
        EXPECT_GT(hits, 0u);
    }
}

TEST(FrontCacheDigest, IdenticalUnderFaultInjection)
{
    // The driver forces the front cache off whenever an injector is
    // armed (a replay could mask a just-injected corruption), so the
    // two runs must agree — and the "on" run must report zero front
    // hits, proving the forcing actually happened.
    auto cfgOn = smallConfig(MmuOrg::Thp, true);
    cfgOn.faultSpec = "ppn-flip@l1-4k:0.005";
    auto cfgOff = smallConfig(MmuOrg::Thp, false);
    cfgOff.faultSpec = cfgOn.faultSpec;
    const auto onRun = sim::simulate(cfgOn);
    const auto offRun = sim::simulate(cfgOff);
    EXPECT_EQ(qa::resultDigest(onRun), qa::resultDigest(offRun));
    EXPECT_EQ(onRun.frontCacheHits, 0u);
}

} // namespace
} // namespace eat::core
