/**
 * @file
 * Tests for the physical frame allocator.
 */

#include <gtest/gtest.h>

#include <vector>

#include "base/rng.hh"
#include "vm/phys_mem.hh"

namespace eat::vm
{
namespace
{

TEST(PhysMem, AllocatesAlignedExtents)
{
    PhysicalMemory pm(16_MiB);
    auto a = pm.allocContiguous(4096);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(*a % 4096, 0u);

    auto b = pm.allocContiguous(2_MiB, 2_MiB);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(*b % 2_MiB, 0u);
}

TEST(PhysMem, TracksAccounting)
{
    PhysicalMemory pm(1_MiB);
    EXPECT_EQ(pm.capacity(), 1_MiB);
    EXPECT_EQ(pm.allocated(), 0u);
    (void)pm.allocContiguous(256_KiB);
    EXPECT_EQ(pm.allocated(), 256_KiB);
    EXPECT_EQ(pm.freeBytes(), 768_KiB);
}

TEST(PhysMem, ExhaustionReturnsNullopt)
{
    PhysicalMemory pm(64_KiB);
    EXPECT_TRUE(pm.allocContiguous(64_KiB).has_value());
    EXPECT_FALSE(pm.allocContiguous(4096).has_value());
}

TEST(PhysMem, AlignmentCanPreventFit)
{
    PhysicalMemory pm(2_MiB, 0x1000);
    // The pool starts at 4 KB; a 2 MB-aligned 2 MB request cannot fit
    // in [4K, 2M+4K).
    EXPECT_FALSE(pm.allocContiguous(2_MiB, 2_MiB).has_value());
    EXPECT_TRUE(pm.allocContiguous(2_MiB).has_value());
}

TEST(PhysMem, FreeCoalescesNeighbours)
{
    PhysicalMemory pm(64_KiB);
    auto a = pm.allocContiguous(16_KiB);
    auto b = pm.allocContiguous(16_KiB);
    auto c = pm.allocContiguous(32_KiB);
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(pm.freeBytes(), 0u);

    pm.free(*a, 16_KiB);
    pm.free(*c, 32_KiB);
    EXPECT_EQ(pm.numFreeExtents(), 2u);
    pm.free(*b, 16_KiB); // bridges both neighbours
    EXPECT_EQ(pm.numFreeExtents(), 1u);
    EXPECT_EQ(pm.largestFreeExtent(), 64_KiB);
}

TEST(PhysMem, DoubleFreePanics)
{
    PhysicalMemory pm(64_KiB);
    auto a = pm.allocContiguous(16_KiB);
    ASSERT_TRUE(a);
    pm.free(*a, 16_KiB);
    EXPECT_THROW(pm.free(*a, 16_KiB), std::logic_error);
}

TEST(PhysMem, RejectsBadArguments)
{
    PhysicalMemory pm(64_KiB);
    EXPECT_THROW((void)pm.allocContiguous(0), std::logic_error);
    EXPECT_THROW((void)pm.allocContiguous(100), std::logic_error);
    EXPECT_THROW((void)pm.allocContiguous(4096, 3), std::logic_error);
    EXPECT_THROW(PhysicalMemory(100), std::logic_error);
}

TEST(PhysMem, FragmentationReducesLargestExtent)
{
    PhysicalMemory pm(8_MiB);
    Rng rng(42);
    const auto before = pm.largestFreeExtent();
    pm.fragment(0.2, rng);
    EXPECT_LT(pm.largestFreeExtent(), before);
    EXPECT_GT(pm.numFreeExtents(), 1u);
    EXPECT_LT(pm.freeBytes(), 8_MiB);
    // A large contiguous request should now be much harder to satisfy.
    EXPECT_FALSE(pm.allocContiguous(4_MiB).has_value());
}

TEST(PhysMem, FragmentZeroIsNoop)
{
    PhysicalMemory pm(1_MiB);
    Rng rng(1);
    pm.fragment(0.0, rng);
    EXPECT_EQ(pm.freeBytes(), 1_MiB);
    EXPECT_EQ(pm.numFreeExtents(), 1u);
}

/** Property: no two live allocations ever overlap. */
TEST(PhysMemProperty, AllocationsNeverOverlap)
{
    PhysicalMemory pm(4_MiB);
    Rng rng(7);
    std::vector<std::pair<Addr, std::uint64_t>> live;
    for (int iter = 0; iter < 500; ++iter) {
        if (rng.chance(0.6) || live.empty()) {
            const std::uint64_t bytes = (1 + rng.below(8)) * 4096;
            auto a = pm.allocContiguous(bytes);
            if (!a)
                continue;
            for (const auto &[base, size] : live) {
                const bool disjoint =
                    *a + bytes <= base || base + size <= *a;
                ASSERT_TRUE(disjoint)
                    << "overlap at iteration " << iter;
            }
            live.emplace_back(*a, bytes);
        } else {
            const auto idx = rng.below(live.size());
            pm.free(live[idx].first, live[idx].second);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
    }
}

/** Property: free bytes are conserved across alloc/free cycles. */
TEST(PhysMemProperty, ConservationOfBytes)
{
    PhysicalMemory pm(2_MiB);
    Rng rng(11);
    std::vector<std::pair<Addr, std::uint64_t>> live;
    std::uint64_t liveBytes = 0;
    for (int iter = 0; iter < 300; ++iter) {
        if (rng.chance(0.5) || live.empty()) {
            const std::uint64_t bytes = (1 + rng.below(4)) * 4096;
            if (auto a = pm.allocContiguous(bytes)) {
                live.emplace_back(*a, bytes);
                liveBytes += bytes;
            }
        } else {
            const auto idx = rng.below(live.size());
            liveBytes -= live[idx].second;
            pm.free(live[idx].first, live[idx].second);
            live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
        }
        ASSERT_EQ(pm.allocated(), liveBytes);
        ASSERT_EQ(pm.freeBytes() + liveBytes, 2_MiB);
    }
}

} // namespace
} // namespace eat::vm
