/**
 * @file
 * Tests for the x86-64 four-level page table.
 */

#include <gtest/gtest.h>

#include "base/rng.hh"
#include "vm/page_table.hh"

namespace eat::vm
{
namespace
{

TEST(PageTable, MapAndTranslate4K)
{
    PageTable pt;
    pt.map(0x1000, 0x20000, PageSize::Size4K);
    auto t = pt.translate(0x1234);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->vbase, 0x1000u);
    EXPECT_EQ(t->pbase, 0x20000u);
    EXPECT_EQ(t->size, PageSize::Size4K);
    EXPECT_EQ(t->paddr(0x1234), 0x20234u);
}

TEST(PageTable, MapAndTranslate2M)
{
    PageTable pt;
    pt.map(4_MiB, 16_MiB, PageSize::Size2M);
    auto t = pt.translate(4_MiB + 12345);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->size, PageSize::Size2M);
    EXPECT_EQ(t->paddr(4_MiB + 12345), 16_MiB + 12345);
}

TEST(PageTable, MapAndTranslate1G)
{
    PageTable pt;
    pt.map(2_GiB, 4_GiB, PageSize::Size1G);
    auto t = pt.translate(2_GiB + 123456789);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->size, PageSize::Size1G);
    EXPECT_EQ(t->paddr(2_GiB + 123456789), 4_GiB + 123456789);
}

TEST(PageTable, UnmappedIsEmpty)
{
    PageTable pt;
    EXPECT_FALSE(pt.translate(0x5000).has_value());
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_FALSE(pt.translate(0x2000).has_value());
    EXPECT_FALSE(pt.translate(0x0).has_value());
}

TEST(PageTable, RejectsMisalignedMappings)
{
    PageTable pt;
    EXPECT_THROW(pt.map(0x1001, 0x2000, PageSize::Size4K),
                 std::logic_error);
    EXPECT_THROW(pt.map(0x1000, 0x2001, PageSize::Size4K),
                 std::logic_error);
    EXPECT_THROW(pt.map(4096, 0, PageSize::Size2M), std::logic_error);
}

TEST(PageTable, RejectsOverlaps)
{
    PageTable pt;
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_THROW(pt.map(0x1000, 0x9000, PageSize::Size4K),
                 std::logic_error);
    // A 2 MB mapping over an existing 4 KB leaf's region.
    EXPECT_THROW(pt.map(0, 2_MiB, PageSize::Size2M), std::logic_error);
    // A 4 KB mapping under an existing 2 MB leaf.
    pt.map(4_MiB, 8_MiB, PageSize::Size2M);
    EXPECT_THROW(pt.map(4_MiB + 4096, 0x9000, PageSize::Size4K),
                 std::logic_error);
}

TEST(PageTable, UnmapRemovesMapping)
{
    PageTable pt;
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_TRUE(pt.unmap(0x1000, PageSize::Size4K));
    EXPECT_FALSE(pt.translate(0x1000).has_value());
    EXPECT_FALSE(pt.unmap(0x1000, PageSize::Size4K));
    // Remapping after unmap works.
    pt.map(0x1000, 0x3000, PageSize::Size4K);
    EXPECT_EQ(pt.translate(0x1000)->pbase, 0x3000u);
}

TEST(PageTable, CountsPerSize)
{
    PageTable pt;
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    pt.map(0x2000, 0x3000, PageSize::Size4K);
    pt.map(4_MiB, 8_MiB, PageSize::Size2M);
    EXPECT_EQ(pt.pageCount(PageSize::Size4K), 2u);
    EXPECT_EQ(pt.pageCount(PageSize::Size2M), 1u);
    EXPECT_EQ(pt.pageCount(PageSize::Size1G), 0u);
    pt.unmap(0x1000, PageSize::Size4K);
    EXPECT_EQ(pt.pageCount(PageSize::Size4K), 1u);
}

TEST(PageTable, DemoteSplits2MInto4K)
{
    PageTable pt;
    pt.map(4_MiB, 32_MiB, PageSize::Size2M);
    ASSERT_TRUE(pt.demote(4_MiB));
    EXPECT_EQ(pt.pageCount(PageSize::Size2M), 0u);
    EXPECT_EQ(pt.pageCount(PageSize::Size4K), 512u);
    // Translation results are unchanged.
    auto t = pt.translate(4_MiB + 1234567);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->size, PageSize::Size4K);
    EXPECT_EQ(t->paddr(4_MiB + 1234567), 32_MiB + 1234567);
}

TEST(PageTable, DemoteRejectsNon2MTargets)
{
    PageTable pt;
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    EXPECT_FALSE(pt.demote(0x1000));
    EXPECT_FALSE(pt.demote(4_MiB)); // unmapped
    EXPECT_FALSE(pt.demote(4_MiB + 4096)); // misaligned
}

TEST(PageTable, WalkLevelsPerSize)
{
    EXPECT_EQ(PageTable::walkLevels(PageSize::Size4K), 4u);
    EXPECT_EQ(PageTable::walkLevels(PageSize::Size2M), 3u);
    EXPECT_EQ(PageTable::walkLevels(PageSize::Size1G), 2u);
}

TEST(PageTable, MoveTransfersOwnership)
{
    PageTable pt;
    pt.map(0x1000, 0x2000, PageSize::Size4K);
    PageTable other = std::move(pt);
    ASSERT_TRUE(other.translate(0x1000).has_value());
    EXPECT_EQ(other.pageCount(PageSize::Size4K), 1u);
}

/** Property: random non-overlapping mappings translate consistently. */
TEST(PageTableProperty, RandomMappingsRoundTrip)
{
    PageTable pt;
    Rng rng(3);
    std::vector<std::pair<Addr, Addr>> pages; // (vbase, pbase)
    for (int i = 0; i < 2000; ++i) {
        const Addr vbase = rng.below(1u << 20) << 12;
        const Addr pbase = (rng.below(1u << 20) + (1u << 20)) << 12;
        bool dup = false;
        for (const auto &[v, p] : pages)
            dup |= v == vbase;
        if (dup)
            continue;
        pt.map(vbase, pbase, PageSize::Size4K);
        pages.emplace_back(vbase, pbase);
    }
    for (const auto &[v, p] : pages) {
        const Addr off = rng.below(4096);
        auto t = pt.translate(v + off);
        ASSERT_TRUE(t.has_value());
        ASSERT_EQ(t->paddr(v + off), p + off);
    }
}

} // namespace
} // namespace eat::vm
