/**
 * @file
 * Tests for the crash-resilient campaign layer: JSONL truncation
 * tolerance, the retry policy and failure taxonomy, checkpoint-journal
 * recovery, the engine's retry/quarantine/replay behavior, and — at
 * the binary level — the headline guarantee: kill -9 a campaign
 * mid-run, resume it, and the merged output is byte-identical (modulo
 * wall-clock columns) to an uninterrupted run, for both eatbatch and
 * eatfuzz, at -j1 and -j4.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "campaign/engine.hh"
#include "campaign/journal.hh"
#include "campaign/jsonl.hh"
#include "campaign/retry.hh"
#include "sim/batch.hh"

namespace eat::campaign
{
namespace
{

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + name;
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << content;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

// ---- JSONL truncation tolerance ---------------------------------------

TEST(CampaignJsonl, ReadsCompleteFiles)
{
    const std::string path = tmpPath("jsonl_complete.jsonl");
    writeFile(path, "{\"a\":1}\n{\"b\":2}\n");
    const auto file = readJsonl(path);
    ASSERT_TRUE(file.ok()) << file.status().message();
    EXPECT_EQ(file.value().records.size(), 2u);
    EXPECT_FALSE(file.value().truncated());
    std::remove(path.c_str());
}

TEST(CampaignJsonl, ToleratesATruncatedFinalRecord)
{
    // The kill -9 signature: the writer died mid-append. Everything
    // before the torn line must survive, and the tear must be
    // reported, not silently eaten.
    const std::string path = tmpPath("jsonl_torn.jsonl");
    writeFile(path, "{\"a\":1}\n{\"b\":2}\n{\"c\":");
    const auto file = readJsonl(path);
    ASSERT_TRUE(file.ok()) << file.status().message();
    EXPECT_EQ(file.value().records.size(), 2u);
    EXPECT_TRUE(file.value().truncated());
    EXPECT_NE(file.value().truncatedTail.find("truncated"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(CampaignJsonl, MalformedMiddleLineIsCorruptionNotTruncation)
{
    const std::string path = tmpPath("jsonl_corrupt.jsonl");
    writeFile(path, "{\"a\":1}\nnot json at all\n{\"b\":2}\n");
    const auto file = readJsonl(path);
    ASSERT_FALSE(file.ok());
    EXPECT_NE(file.status().message().find("malformed"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(CampaignJsonl, MissingFileIsAnError)
{
    const auto file = readJsonl(tmpPath("jsonl_no_such_file.jsonl"));
    EXPECT_FALSE(file.ok());
}

TEST(CampaignJsonl, WriterFlushesPerRecord)
{
    // The record must be on disk before append() returns — read the
    // file back while the writer is still open.
    const std::string path = tmpPath("jsonl_flush.jsonl");
    auto writer = JsonlWriter::open(path, JsonlWriter::Mode::Truncate);
    ASSERT_TRUE(writer.ok()) << writer.status().message();
    ASSERT_TRUE(writer.value().append("{\"x\":1}").ok());
    EXPECT_EQ(readFile(path), "{\"x\":1}\n");
    ASSERT_TRUE(writer.value().append("{\"y\":2}").ok());
    EXPECT_EQ(readFile(path), "{\"x\":1}\n{\"y\":2}\n");
    EXPECT_EQ(writer.value().appended(), 2u);
    std::remove(path.c_str());
}

// ---- failure classification and retry policy --------------------------

TEST(CampaignRetry, ClassifiesEveryWayAChildCanFail)
{
    using TaskState = sim::ProcessPool::TaskState;
    sim::ProcessPool::TaskResult r;

    r.state = TaskState::SpawnFailed;
    EXPECT_EQ(classify(r, true), FailureClass::SpawnFailed);
    r.state = TaskState::TimedOut;
    EXPECT_EQ(classify(r, true), FailureClass::TimedOut);
    r.state = TaskState::Crashed;
    EXPECT_EQ(classify(r, true), FailureClass::Crashed);
    r.state = TaskState::Done;
    r.exitCode = 125;
    EXPECT_EQ(classify(r, true), FailureClass::NonzeroExit);
    r.exitCode = 0;
    EXPECT_EQ(classify(r, false), FailureClass::BadPayload);
    EXPECT_EQ(classify(r, true), FailureClass::None);
}

TEST(CampaignRetry, TransientVersusPersistentSplit)
{
    EXPECT_TRUE(isTransient(FailureClass::SpawnFailed));
    EXPECT_TRUE(isTransient(FailureClass::Crashed));
    EXPECT_TRUE(isTransient(FailureClass::TimedOut));
    EXPECT_FALSE(isTransient(FailureClass::None));
    EXPECT_FALSE(isTransient(FailureClass::NonzeroExit));
    EXPECT_FALSE(isTransient(FailureClass::BadPayload));
}

TEST(CampaignRetry, FailureClassNamesRoundTrip)
{
    for (const FailureClass c :
         {FailureClass::None, FailureClass::SpawnFailed,
          FailureClass::Crashed, FailureClass::TimedOut,
          FailureClass::NonzeroExit, FailureClass::BadPayload}) {
        const auto parsed = parseFailureClass(failureClassName(c));
        ASSERT_TRUE(parsed.ok());
        EXPECT_EQ(parsed.value(), c);
    }
    EXPECT_FALSE(parseFailureClass("flaky").ok());
}

TEST(CampaignRetry, BackoffIsBoundedExponential)
{
    RetryPolicy policy; // base 200 ms, cap 5000 ms
    EXPECT_EQ(policy.backoffMsForRetry(0), 0u);
    EXPECT_EQ(policy.backoffMsForRetry(1), 200u);
    EXPECT_EQ(policy.backoffMsForRetry(2), 400u);
    EXPECT_EQ(policy.backoffMsForRetry(5), 3'200u);
    EXPECT_EQ(policy.backoffMsForRetry(6), 5'000u);  // capped
    EXPECT_EQ(policy.backoffMsForRetry(40), 5'000u); // shift-safe
}

TEST(CampaignRetry, ParseRetriesValidates)
{
    EXPECT_EQ(parseRetries("0").value(), 0u);
    EXPECT_EQ(parseRetries("10").value(), 10u);
    EXPECT_FALSE(parseRetries("nope").ok());
    EXPECT_FALSE(parseRetries("-1").ok());
    const auto over = parseRetries("99");
    ASSERT_FALSE(over.ok());
    EXPECT_NE(over.status().message().find("cap"), std::string::npos);
}

// ---- checkpoint journal -----------------------------------------------

TEST(CampaignJournal, CreateAppendLoadRoundTrip)
{
    const std::string path = tmpPath("journal_roundtrip.jsonl");
    {
        auto journal = CheckpointJournal::create(path, "fp-1");
        ASSERT_TRUE(journal.ok()) << journal.status().message();
        JournalEntry a;
        a.key = "mcf:THP";
        a.state = "done";
        a.payload = "OK\nline two\n"; // newlines must survive JSON
        ASSERT_TRUE(journal.value().append(a).ok());
        JournalEntry b;
        b.key = "mcf:RMM";
        b.state = "signal";
        b.termSignal = 9;
        b.attempts = 3;
        b.quarantined = true;
        b.error = "fork() failed: Resource temporarily unavailable";
        ASSERT_TRUE(journal.value().append(b).ok());
        EXPECT_EQ(journal.value().appended(), 2u);
    }
    CheckpointJournal::Recovered recovered;
    auto loaded = CheckpointJournal::load(path, "fp-1", recovered);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    ASSERT_EQ(recovered.entries.size(), 2u);
    EXPECT_EQ(recovered.entries[0].key, "mcf:THP");
    EXPECT_EQ(recovered.entries[0].payload, "OK\nline two\n");
    EXPECT_EQ(recovered.entries[1].state, "signal");
    EXPECT_EQ(recovered.entries[1].termSignal, 9);
    EXPECT_EQ(recovered.entries[1].attempts, 3u);
    EXPECT_TRUE(recovered.entries[1].quarantined);
    EXPECT_TRUE(recovered.truncatedTail.empty());
    std::remove(path.c_str());
}

TEST(CampaignJournal, DuplicateKeysResolveLastWins)
{
    const std::string path = tmpPath("journal_dedup.jsonl");
    {
        auto journal = CheckpointJournal::create(path, "fp");
        ASSERT_TRUE(journal.ok());
        JournalEntry e;
        e.key = "cell";
        e.state = "timeout";
        ASSERT_TRUE(journal.value().append(e).ok());
        e.state = "done";
        e.attempts = 2;
        ASSERT_TRUE(journal.value().append(e).ok());
    }
    CheckpointJournal::Recovered recovered;
    auto loaded = CheckpointJournal::load(path, "fp", recovered);
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(recovered.entries.size(), 1u);
    EXPECT_EQ(recovered.entries[0].state, "done");
    EXPECT_EQ(recovered.entries[0].attempts, 2u);
    std::remove(path.c_str());
}

TEST(CampaignJournal, FingerprintMismatchIsAnError)
{
    const std::string path = tmpPath("journal_fp.jsonl");
    {
        auto journal = CheckpointJournal::create(path, "grid-A");
        ASSERT_TRUE(journal.ok());
    }
    CheckpointJournal::Recovered recovered;
    const auto loaded =
        CheckpointJournal::load(path, "grid-B", recovered);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("different campaign"),
              std::string::npos);
    std::remove(path.c_str());
}

TEST(CampaignJournal, TruncatedTailIsDroppedAndCompactedAway)
{
    const std::string path = tmpPath("journal_torn.jsonl");
    {
        auto journal = CheckpointJournal::create(path, "fp");
        ASSERT_TRUE(journal.ok());
        JournalEntry e;
        e.key = "survivor";
        e.state = "done";
        ASSERT_TRUE(journal.value().append(e).ok());
    }
    // Simulate the writer dying mid-append.
    {
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"schema\":\"eat.campaign.journal\",\"v\":1,\"kind\"";
    }
    CheckpointJournal::Recovered recovered;
    auto loaded = CheckpointJournal::load(path, "fp", recovered);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    ASSERT_EQ(recovered.entries.size(), 1u);
    EXPECT_EQ(recovered.entries[0].key, "survivor");
    EXPECT_FALSE(recovered.truncatedTail.empty());

    // Compaction healed the file: end-to-end parseable again, meta
    // record plus the surviving cell.
    const auto reread = readJsonl(path);
    ASSERT_TRUE(reread.ok()) << reread.status().message();
    EXPECT_FALSE(reread.value().truncated());
    EXPECT_EQ(reread.value().records.size(), 2u);
    std::remove(path.c_str());
}

TEST(CampaignJournal, LoadOfAMissingJournalDegradesToCreate)
{
    const std::string path = tmpPath("journal_missing.jsonl");
    std::remove(path.c_str());
    CheckpointJournal::Recovered recovered;
    auto loaded = CheckpointJournal::load(path, "fp", recovered);
    ASSERT_TRUE(loaded.ok()) << loaded.status().message();
    EXPECT_TRUE(recovered.entries.empty());
    EXPECT_TRUE(fileExists(path)); // meta record written
    std::remove(path.c_str());
}

// ---- the engine: retry, quarantine, replay ----------------------------

TEST(CampaignEngine, TransientFailureRetriesThenSucceeds)
{
    // First attempt: leave a marker and die on a signal. Second
    // attempt sees the marker and succeeds — exactly the shape of a
    // transient fork-pressure or OOM-kill failure.
    const std::string marker = tmpPath("engine_retry_marker");
    std::remove(marker.c_str());

    std::vector<EngineTask> tasks;
    tasks.push_back({"flaky", [marker]() -> std::string {
        if (!fileExists(marker)) {
            std::ofstream touch(marker);
            touch << "x";
            touch.flush();
            ::raise(SIGKILL);
        }
        return "recovered";
    }});

    EngineOptions options;
    options.jobs = 1;
    options.retry.maxRetries = 2;
    options.retry.backoffBaseMs = 1; // keep the test fast

    std::vector<TaskOutcome> outcomes;
    std::ostringstream log;
    const auto run = runEngine(
        options, tasks,
        [&outcomes](std::size_t, const TaskOutcome &outcome,
                    std::size_t) {
            outcomes.push_back(outcome);
            return true;
        },
        log);
    ASSERT_TRUE(run.ok()) << run.status().message();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].failure, FailureClass::None);
    EXPECT_EQ(outcomes[0].payload, "recovered");
    EXPECT_EQ(outcomes[0].attempts, 2u);
    EXPECT_EQ(run.value().retries, 1u);
    EXPECT_EQ(run.value().executed, 1u);
    EXPECT_NE(log.str().find("transient"), std::string::npos);
    std::remove(marker.c_str());
}

TEST(CampaignEngine, ExhaustedRetriesQuarantineWithoutKillingTheSweep)
{
    const std::string quarantinePath = tmpPath("engine_quarantine.jsonl");
    std::remove(quarantinePath.c_str());

    std::vector<EngineTask> tasks;
    tasks.push_back({"poison", []() -> std::string {
        ::raise(SIGKILL);
        return "unreachable";
    }});
    tasks.push_back({"healthy", [] { return std::string("fine"); }});

    EngineOptions options;
    options.jobs = 1;
    options.retry.maxRetries = 1;
    options.retry.backoffBaseMs = 1;
    options.quarantinePath = quarantinePath;

    std::vector<TaskOutcome> outcomes(tasks.size());
    std::ostringstream log;
    const auto run = runEngine(
        options, tasks,
        [&outcomes](std::size_t index, const TaskOutcome &outcome,
                    std::size_t) {
            outcomes[index] = outcome;
            return true;
        },
        log);
    ASSERT_TRUE(run.ok()) << run.status().message();

    EXPECT_EQ(outcomes[0].failure, FailureClass::Crashed);
    EXPECT_EQ(outcomes[0].termSignal, SIGKILL);
    EXPECT_EQ(outcomes[0].attempts, 2u); // budget 1 = two attempts
    EXPECT_TRUE(outcomes[0].quarantined);
    EXPECT_EQ(outcomes[1].failure, FailureClass::None);
    EXPECT_EQ(outcomes[1].payload, "fine");
    EXPECT_EQ(run.value().quarantined, 1u);
    EXPECT_EQ(run.value().retries, 1u);

    const auto quarantine = readJsonl(quarantinePath);
    ASSERT_TRUE(quarantine.ok()) << quarantine.status().message();
    ASSERT_EQ(quarantine.value().records.size(), 1u);
    const auto *key = quarantine.value().records[0].find("key");
    ASSERT_NE(key, nullptr);
    EXPECT_EQ(key->string, "poison");
    const auto *cls = quarantine.value().records[0].find("class");
    ASSERT_NE(cls, nullptr);
    EXPECT_EQ(cls->string, "signal");
    std::remove(quarantinePath.c_str());
}

TEST(CampaignEngine, PersistentFailuresAreNotRetried)
{
    const std::string quarantinePath =
        tmpPath("engine_badpayload.jsonl");
    std::remove(quarantinePath.c_str());

    std::vector<EngineTask> tasks;
    tasks.push_back({"garbled", [] { return std::string("junk"); }});

    EngineOptions options;
    options.jobs = 1;
    options.retry.maxRetries = 3; // must NOT be spent on a bad payload
    options.quarantinePath = quarantinePath;
    options.payloadOk = [](const std::string &) { return false; };

    std::vector<TaskOutcome> outcomes;
    std::ostringstream log;
    const auto run = runEngine(
        options, tasks,
        [&outcomes](std::size_t, const TaskOutcome &outcome,
                    std::size_t) {
            outcomes.push_back(outcome);
            return true;
        },
        log);
    ASSERT_TRUE(run.ok()) << run.status().message();
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].failure, FailureClass::BadPayload);
    EXPECT_EQ(outcomes[0].attempts, 1u);
    EXPECT_TRUE(outcomes[0].quarantined);
    EXPECT_EQ(run.value().retries, 0u);
    std::remove(quarantinePath.c_str());
}

TEST(CampaignEngine, CheckpointReplayDoesNotReExecute)
{
    const std::string journalPath = tmpPath("engine_replay.jsonl");
    std::remove(journalPath.c_str());

    EngineOptions options;
    options.jobs = 2;
    options.journalPath = journalPath;
    options.fingerprint = "replay-test";

    std::vector<EngineTask> tasks;
    tasks.push_back({"a", [] { return std::string("alpha"); }});
    tasks.push_back({"b", [] { return std::string("beta"); }});
    std::ostringstream log;
    const auto first = runEngine(
        options, tasks,
        [](std::size_t, const TaskOutcome &, std::size_t) {
            return true;
        },
        log);
    ASSERT_TRUE(first.ok()) << first.status().message();
    EXPECT_EQ(first.value().executed, 2u);

    // Second run: same keys, but the task bodies would leave evidence
    // if they ran. They must not — the journal satisfies them.
    const std::string sentinel = tmpPath("engine_replay_sentinel");
    std::remove(sentinel.c_str());
    std::vector<EngineTask> rerun;
    for (const auto &key : {"a", "b"}) {
        rerun.push_back({key, [sentinel]() -> std::string {
            std::ofstream touch(sentinel);
            touch << "ran";
            touch.flush();
            return "re-executed";
        }});
    }
    options.resume = true;
    std::vector<TaskOutcome> outcomes(rerun.size());
    const auto second = runEngine(
        options, rerun,
        [&outcomes](std::size_t index, const TaskOutcome &outcome,
                    std::size_t) {
            outcomes[index] = outcome;
            return true;
        },
        log);
    ASSERT_TRUE(second.ok()) << second.status().message();
    EXPECT_EQ(second.value().replayed, 2u);
    EXPECT_EQ(second.value().executed, 0u);
    EXPECT_TRUE(outcomes[0].fromCheckpoint);
    EXPECT_EQ(outcomes[0].payload, "alpha");
    EXPECT_EQ(outcomes[1].payload, "beta");
    EXPECT_FALSE(fileExists(sentinel));
    std::remove(journalPath.c_str());
}

TEST(CampaignEngine, ResumeUnderADifferentFingerprintFails)
{
    const std::string journalPath = tmpPath("engine_fp.jsonl");
    std::remove(journalPath.c_str());

    EngineOptions options;
    options.journalPath = journalPath;
    options.fingerprint = "campaign-one";
    std::vector<EngineTask> tasks;
    tasks.push_back({"a", [] { return std::string("x"); }});
    std::ostringstream log;
    ASSERT_TRUE(runEngine(options, tasks,
                          [](std::size_t, const TaskOutcome &,
                             std::size_t) { return true; },
                          log)
                    .ok());

    options.fingerprint = "campaign-two";
    options.resume = true;
    const auto resumed = runEngine(
        options, tasks,
        [](std::size_t, const TaskOutcome &, std::size_t) {
            return true;
        },
        log);
    ASSERT_FALSE(resumed.ok());
    EXPECT_NE(resumed.status().message().find("different campaign"),
              std::string::npos);
    std::remove(journalPath.c_str());
}

// ---- batch runner on the engine: retry + quarantine -------------------

TEST(CampaignBatch, CrashingCellIsQuarantinedAfterItsRetryBudget)
{
    const std::string csv = tmpPath("campaign_batch_crash.csv");
    const std::string journal = csv + ".journal";
    const std::string quarantine = journal + ".quarantine";
    for (const auto &p : {csv, journal, quarantine})
        std::remove(p.c_str());

    sim::BatchOptions options;
    options.workloadNames = {"mcf"};
    options.orgs = {core::MmuOrg::Thp, core::MmuOrg::Rmm};
    options.base.fastForwardInstructions = 10'000;
    options.base.simulateInstructions = 100'000;
    options.outPath = csv;
    options.failCell = "mcf:RMM:crash";
    options.retries = 1;

    std::ostringstream log;
    const auto r = sim::runBatch(options, log);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().ok, 1u);      // the sibling cell completed
    EXPECT_EQ(r.value().failed, 1u);  // the poisoned cell is data
    EXPECT_EQ(r.value().quarantined, 1u);
    EXPECT_EQ(r.value().retries, 1u);

    // The row carries the real failure class and the attempt count.
    const std::string content = readFile(csv);
    EXPECT_NE(content.find("child killed by signal 9"),
              std::string::npos)
        << content;
    EXPECT_NE(content.find("after 2 attempts"), std::string::npos)
        << content;

    const auto q = readJsonl(quarantine);
    ASSERT_TRUE(q.ok()) << q.status().message();
    ASSERT_EQ(q.value().records.size(), 1u);
    const auto *key = q.value().records[0].find("key");
    ASSERT_NE(key, nullptr);
    EXPECT_EQ(key->string, "mcf:RMM");
    for (const auto &p : {csv, journal, quarantine})
        std::remove(p.c_str());
}

// ---- binary-level crash-resume byte-identity --------------------------

struct CmdResult
{
    int exitCode = -1;
    std::string output;
};

CmdResult
runCmd(const std::string &cmd)
{
    CmdResult result;
    FILE *pipe = popen((cmd + " 2>&1").c_str(), "r");
    if (!pipe) {
        ADD_FAILURE() << "popen failed for: " << cmd;
        return result;
    }
    char buffer[4096];
    std::size_t n = 0;
    while ((n = std::fread(buffer, 1, sizeof buffer, pipe)) > 0)
        result.output.append(buffer, n);
    const int status = pclose(pipe);
    if (WIFEXITED(status))
        result.exitCode = WEXITSTATUS(status);
    else if (WIFSIGNALED(status))
        result.exitCode = 128 + WTERMSIG(status);
    return result;
}

const std::string kEatbatch = EAT_EATBATCH_PATH;
const std::string kEatfuzz = EAT_EATFUZZ_PATH;

/** A sweep CSV with the wall-clock columns blanked. */
std::string
normalizedCsv(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "missing CSV: " << path;
    const auto &timing = sim::batchTimingColumns();
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line)) {
        std::vector<std::string> cells;
        std::string cell;
        std::istringstream ls(line);
        while (std::getline(ls, cell, ','))
            cells.push_back(cell);
        for (const std::size_t col : timing) {
            if (col < cells.size())
                cells[col] = "-";
        }
        for (std::size_t i = 0; i < cells.size(); ++i)
            out << (i ? "," : "") << cells[i];
        out << "\n";
    }
    return out.str();
}

class CrashResume : public ::testing::TestWithParam<int>
{
};

TEST_P(CrashResume, EatbatchKillNineThenResumeIsByteIdentical)
{
    const int jobs = GetParam();
    const std::string dir = ::testing::TempDir();
    const std::string ref = dir + "cr_batch_ref_" +
                            std::to_string(jobs) + ".csv";
    const std::string out = dir + "cr_batch_out_" +
                            std::to_string(jobs) + ".csv";
    for (const auto &p : {ref, ref + ".journal", out, out + ".journal"})
        std::remove(p.c_str());

    const std::string grid =
        " --workloads=mcf,astar --orgs=THP,RMM"
        " --instructions=100000 --fast-forward=10000 -j" +
        std::to_string(jobs);

    const auto reference =
        runCmd(kEatbatch + " --out=" + ref + grid);
    ASSERT_EQ(reference.exitCode, 0) << reference.output;

    // kill -9 the driver after two checkpointed cells (of four): a
    // real parent death, no unwinding, mid-campaign.
    const auto killed = runCmd(kEatbatch + " --out=" + out + grid +
                               " --kill-after=2");
    ASSERT_EQ(killed.exitCode, 128 + SIGKILL) << killed.output;

    const auto resumed =
        runCmd(kEatbatch + " --out=" + out + grid + " --resume");
    ASSERT_EQ(resumed.exitCode, 0) << resumed.output;
    EXPECT_NE(resumed.output.find("resumed"), std::string::npos)
        << resumed.output;

    EXPECT_EQ(normalizedCsv(out), normalizedCsv(ref));
    for (const auto &p : {ref, ref + ".journal", out, out + ".journal"})
        std::remove(p.c_str());
}

TEST_P(CrashResume, EatfuzzKillNineThenResumeIsByteIdentical)
{
    const int jobs = GetParam();
    const std::string dir = ::testing::TempDir();
    const std::string suffix = std::to_string(jobs) + ".jsonl";
    const std::string ref = dir + "cr_fuzz_ref_" + suffix;
    const std::string out = dir + "cr_fuzz_out_" + suffix;
    const std::string ckpt = dir + "cr_fuzz_ckpt_" + suffix;
    for (const auto &p : {ref, out, ckpt, ckpt + ".quarantine"})
        std::remove(p.c_str());

    const std::string campaign =
        " --runs=10 --seed=42 --no-shrink -j" + std::to_string(jobs);

    const auto reference =
        runCmd(kEatfuzz + campaign + " --verdicts=" + ref);
    ASSERT_EQ(reference.exitCode, 0) << reference.output;

    const auto killed =
        runCmd(kEatfuzz + campaign + " --verdicts=" + out +
               " --checkpoint=" + ckpt + " --kill-after=4");
    ASSERT_EQ(killed.exitCode, 128 + SIGKILL) << killed.output;

    const auto resumed =
        runCmd(kEatfuzz + campaign + " --verdicts=" + out +
               " --checkpoint=" + ckpt + " --resume");
    ASSERT_EQ(resumed.exitCode, 0) << resumed.output;
    EXPECT_NE(resumed.output.find("replayed from checkpoint"),
              std::string::npos)
        << resumed.output;

    // Verdicts have no wall-clock columns: exact equality.
    EXPECT_EQ(readFile(out), readFile(ref));
    for (const auto &p : {ref, out, ckpt, ckpt + ".quarantine"})
        std::remove(p.c_str());
}

INSTANTIATE_TEST_SUITE_P(Jobs, CrashResume, ::testing::Values(1, 4));

TEST(CrashResumeCli, ResumingADifferentCampaignFails)
{
    const std::string dir = ::testing::TempDir();
    const std::string verdicts = dir + "cr_fp_verdicts.jsonl";
    const std::string ckpt = dir + "cr_fp_ckpt.jsonl";
    for (const auto &p : {verdicts, ckpt})
        std::remove(p.c_str());

    const auto first = runCmd(kEatfuzz + " --runs=2 --seed=42 -j1" +
                              " --verdicts=" + verdicts +
                              " --checkpoint=" + ckpt);
    ASSERT_EQ(first.exitCode, 0) << first.output;

    // Same journal, different campaign seed: the fingerprint guard
    // must refuse rather than silently merge foreign results.
    const auto wrong = runCmd(kEatfuzz + " --runs=2 --seed=43 -j1" +
                              " --verdicts=" + verdicts +
                              " --checkpoint=" + ckpt + " --resume");
    EXPECT_EQ(wrong.exitCode, 1) << wrong.output;
    EXPECT_NE(wrong.output.find("different campaign"),
              std::string::npos)
        << wrong.output;
    for (const auto &p : {verdicts, ckpt})
        std::remove(p.c_str());
}

// ---- graceful shutdown ------------------------------------------------

TEST(GracefulShutdown, SigtermStopsDispatchAndLeavesResumableState)
{
    const std::string dir = ::testing::TempDir();
    const std::string ref = dir + "gs_ref.csv";
    const std::string out = dir + "gs_out.csv";
    for (const auto &p : {ref, ref + ".journal", out, out + ".journal"})
        std::remove(p.c_str());

    // Big enough that four cells take a while at -j1, so the SIGTERM
    // lands mid-sweep.
    const std::vector<std::string> args = {
        "--out=" + out,
        "--workloads=mcf,astar",
        "--orgs=THP,RMM",
        "--instructions=3000000",
        "--fast-forward=10000",
        "-j1",
    };

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        std::vector<char *> argv;
        argv.push_back(const_cast<char *>(kEatbatch.c_str()));
        for (const auto &a : args)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        // Quiet: the parent only cares about the exit status.
        std::freopen("/dev/null", "w", stdout);
        execv(kEatbatch.c_str(), argv.data());
        _exit(127);
    }

    // Wait for the first checkpointed cell (meta line + 1), then pull
    // the plug politely.
    bool sawCell = false;
    for (int spin = 0; spin < 3000; ++spin) {
        std::ifstream in(out + ".journal");
        std::string line;
        std::size_t lines = 0;
        while (std::getline(in, line))
            ++lines;
        if (lines >= 2) {
            sawCell = true;
            break;
        }
        ::usleep(10'000);
    }
    ASSERT_TRUE(sawCell) << "no cell checkpointed within 30s";
    ASSERT_EQ(::kill(pid, SIGTERM), 0);

    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status))
        << "driver must exit cleanly, not die on the signal";
    EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM);

    // The resumed run completes the grid and matches an uninterrupted
    // reference byte-for-byte outside the wall-clock columns.
    const std::string grid =
        " --workloads=mcf,astar --orgs=THP,RMM"
        " --instructions=3000000 --fast-forward=10000 -j1";
    const auto resumed =
        runCmd(kEatbatch + " --out=" + out + grid + " --resume");
    ASSERT_EQ(resumed.exitCode, 0) << resumed.output;
    EXPECT_NE(resumed.output.find("resumed"), std::string::npos);

    const auto reference = runCmd(kEatbatch + " --out=" + ref + grid);
    ASSERT_EQ(reference.exitCode, 0) << reference.output;
    EXPECT_EQ(normalizedCsv(out), normalizedCsv(ref));
    for (const auto &p : {ref, ref + ".journal", out, out + ".journal"})
        std::remove(p.c_str());
}

} // namespace
} // namespace eat::campaign
