/**
 * @file
 * End-to-end simulator tests: every organization runs every mechanism
 * path, results are reproducible, and the headline invariants of the
 * paper hold on short runs.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "obs/json.hh"
#include "obs/metrics.hh"
#include "obs/telemetry.hh"
#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace eat::sim
{
namespace
{

SimConfig
quickConfig(const std::string &workload, core::MmuOrg org,
            InstrCount instructions = 2'000'000)
{
    SimConfig cfg;
    cfg.workload = *workloads::findWorkload(workload);
    cfg.mmu = core::MmuConfig::make(org);
    cfg.fastForwardInstructions = 100'000;
    cfg.simulateInstructions = instructions;
    return cfg;
}

TEST(Simulator, SmokeAllOrgs)
{
    for (const auto org : core::allOrgs()) {
        const auto r = simulate(quickConfig("omnetpp", org, 500'000));
        EXPECT_EQ(r.org, org);
        EXPECT_EQ(r.workloadName, "omnetpp");
        EXPECT_GE(r.stats.instructions, 500'000u);
        EXPECT_GT(r.stats.memOps, 0u);
        EXPECT_GT(r.totalEnergy(), 0.0);
        EXPECT_GT(r.energyPerKiloInstr(), 0.0);
    }
}

TEST(Simulator, BitIdenticalReruns)
{
    const auto a = simulate(quickConfig("astar", core::MmuOrg::RmmLite));
    const auto b = simulate(quickConfig("astar", core::MmuOrg::RmmLite));
    EXPECT_EQ(a.stats.memOps, b.stats.memOps);
    EXPECT_EQ(a.stats.l1Misses, b.stats.l1Misses);
    EXPECT_EQ(a.stats.l2Misses, b.stats.l2Misses);
    EXPECT_DOUBLE_EQ(a.totalEnergy(), b.totalEnergy());
    EXPECT_EQ(a.lite.wayDisableEvents, b.lite.wayDisableEvents);
}

TEST(Simulator, SeedChangesTheRun)
{
    auto cfg = quickConfig("astar", core::MmuOrg::Thp);
    const auto a = simulate(cfg);
    cfg.seed = 1234;
    const auto b = simulate(cfg);
    EXPECT_NE(a.stats.l1Misses, b.stats.l1Misses);
}

TEST(Simulator, TimelineRecordsIntervals)
{
    auto cfg = quickConfig("mcf", core::MmuOrg::Base4K, 1'000'000);
    cfg.timelineInterval = 100'000;
    const auto r = simulate(cfg);
    EXPECT_GE(r.mpkiTimeline.numSamples(), 9u);
    EXPECT_LE(r.mpkiTimeline.numSamples(), 11u);
    EXPECT_GT(r.mpkiTimeline.mean(), 0.0);
}

TEST(Simulator, TimelineFlushesFinalPartialWindow)
{
    // 250k instructions at a 100k interval: two full windows plus a
    // ~50k tail that must not be dropped.
    auto cfg = quickConfig("mcf", core::MmuOrg::Base4K, 250'000);
    cfg.timelineInterval = 100'000;
    const auto r = simulate(cfg);
    EXPECT_EQ(r.mpkiTimeline.numSamples(), 3u);
}

/** Read one whole file (test helper; missing file fails the caller). */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

TEST(Simulator, MetricsRegistryMatchesLegacyStats)
{
    const std::string path = ::testing::TempDir() + "eat_sim_metrics.json";
    auto cfg = quickConfig("mcf", core::MmuOrg::TlbLite, 1'000'000);
    cfg.metricsPath = path;
    const auto r = simulate(cfg);

    const auto parsed = obs::parseJson(slurp(path));
    std::remove(path.c_str());
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    const obs::JsonValue &doc = parsed.value();
    EXPECT_EQ(doc.find("schema")->string, obs::kMetricsSchema);

    const obs::JsonValue *m = doc.find("metrics");
    ASSERT_NE(m, nullptr);
    auto counter = [m](std::string_view name) -> std::uint64_t {
        const obs::JsonValue *v = m->find(name);
        EXPECT_NE(v, nullptr) << "missing metric " << name;
        return v ? static_cast<std::uint64_t>(v->number) : 0;
    };

    // The registry is a view over the same state MmuStats aggregates.
    EXPECT_EQ(counter("mmu.instructions"), r.stats.instructions);
    EXPECT_EQ(counter("mmu.mem_ops"), r.stats.memOps);
    EXPECT_EQ(counter("mmu.l1_hits"), r.stats.l1Hits);
    EXPECT_EQ(counter("mmu.l1_misses"), r.stats.l1Misses);
    EXPECT_EQ(counter("mmu.l2_misses"), r.stats.l2Misses);
    EXPECT_EQ(counter("mmu.walk_cycles"), r.stats.walkCycles);
    EXPECT_EQ(counter("mmu.hits.page_walk"),
              r.stats.hits(core::HitSource::PageWalk));
    EXPECT_EQ(counter("lite.intervals"), r.lite.intervals);
    EXPECT_EQ(counter("lite.way_disable_events"),
              r.lite.wayDisableEvents);
    EXPECT_EQ(counter("check.translation_checks"),
              r.check.translationChecks);
    EXPECT_NEAR(m->find("energy.dynamic_pj")->number, r.totalEnergy(),
                1e-6 * r.totalEnergy());
}

TEST(Simulator, TelemetryStreamsOneParseableRecordPerInterval)
{
    const std::string path = ::testing::TempDir() + "eat_sim_tel.jsonl";
    auto cfg = quickConfig("mcf", core::MmuOrg::TlbLite, 3'000'000);
    cfg.telemetryPath = path;
    const auto r = simulate(cfg);

    // The sink closed one record per Lite interval.
    EXPECT_EQ(r.telemetryRecords, r.lite.intervals);
    EXPECT_GE(r.telemetryRecords, 3u);

    std::istringstream lines(slurp(path));
    std::remove(path.c_str());
    std::string line;
    std::uint64_t parsedCount = 0;
    std::uint64_t instrTotal = 0;
    while (std::getline(lines, line)) {
        const auto parsed = obs::parseJson(line);
        ASSERT_TRUE(parsed.ok())
            << parsed.status().message() << " in: " << line;
        const obs::JsonValue &v = parsed.value();
        EXPECT_EQ(v.find("schema")->string, obs::kTelemetrySchema);
        EXPECT_DOUBLE_EQ(v.find("v")->number, obs::kTelemetryVersion);
        EXPECT_DOUBLE_EQ(v.find("interval")->number,
                         static_cast<double>(parsedCount));
        EXPECT_DOUBLE_EQ(v.find("start_instr")->number,
                         static_cast<double>(instrTotal));
        instrTotal +=
            static_cast<std::uint64_t>(v.find("instructions")->number);
        ASSERT_NE(v.find("way_mask"), nullptr);
        EXPECT_NE(v.find("way_mask")->find("L1-4KB TLB"), nullptr);
        ++parsedCount;
    }
    EXPECT_EQ(parsedCount, r.telemetryRecords);
    EXPECT_LE(instrTotal, r.stats.instructions);
}

TEST(Simulator, TraceOutIsStructurallyValidChromeTrace)
{
    const std::string path = ::testing::TempDir() + "eat_sim_trace.json";
    auto cfg = quickConfig("astar", core::MmuOrg::TlbLite, 3'000'000);
    cfg.traceOutPath = path;
    const auto r = simulate(cfg);
    EXPECT_GT(r.traceEvents, 0u);
    EXPECT_EQ(r.traceEventsDropped, 0u);

    const auto parsed = obs::parseJson(slurp(path));
    std::remove(path.c_str());
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    const obs::JsonValue *events = parsed.value().find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    double lastTs = -1.0;
    for (const obs::JsonValue &e : events->array) {
        ASSERT_TRUE(e.isObject());
        ASSERT_NE(e.find("ph"), nullptr);
        if (e.find("ph")->string == "M")
            continue;
        const double ts = e.find("ts")->number;
        EXPECT_GE(ts, lastTs);
        lastTs = ts;
    }
}

TEST(Simulator, ObservabilityOutputsDoNotPerturbResults)
{
    auto plain = quickConfig("astar", core::MmuOrg::TlbLite, 1'000'000);
    const auto a = simulate(plain);

    auto instrumented = plain;
    instrumented.metricsPath = ::testing::TempDir() + "eat_sim_m2.json";
    instrumented.telemetryPath =
        ::testing::TempDir() + "eat_sim_t2.jsonl";
    instrumented.traceOutPath = ::testing::TempDir() + "eat_sim_c2.json";
    const auto b = simulate(instrumented);
    std::remove(instrumented.metricsPath.c_str());
    std::remove(instrumented.telemetryPath.c_str());
    std::remove(instrumented.traceOutPath.c_str());

    // Observation must be passive: bit-identical simulated behaviour.
    EXPECT_EQ(a.stats.memOps, b.stats.memOps);
    EXPECT_EQ(a.stats.l1Misses, b.stats.l1Misses);
    EXPECT_EQ(a.stats.l2Misses, b.stats.l2Misses);
    EXPECT_DOUBLE_EQ(a.totalEnergy(), b.totalEnergy());
    EXPECT_EQ(a.lite.wayDisableEvents, b.lite.wayDisableEvents);
}

TEST(Simulator, ProfilePopulated)
{
    const auto r = simulate(quickConfig("astar", core::MmuOrg::Thp,
                                        300'000));
    EXPECT_GE(r.profile.stages.size(), 3u);
    EXPECT_GT(r.profile.seconds("simulate"), 0.0);
    EXPECT_GT(r.profile.total(), 0.0);
    EXPECT_GT(r.simKips(), 0.0);
}

TEST(Simulator, OsFactsFollowPolicy)
{
    const auto thp = simulate(quickConfig("mcf", core::MmuOrg::Thp,
                                          200'000));
    EXPECT_GT(thp.pages2M, 0u);
    EXPECT_EQ(thp.numRanges, 0u);

    const auto rmmLite =
        simulate(quickConfig("mcf", core::MmuOrg::RmmLite, 200'000));
    EXPECT_EQ(rmmLite.pages2M, 0u); // RMM_Lite maps 4 KB pages only
    EXPECT_GT(rmmLite.numRanges, 0u);
    EXPECT_DOUBLE_EQ(rmmLite.rangeCoverage, 1.0); // perfect eager paging

    const auto base = simulate(quickConfig("mcf", core::MmuOrg::Base4K,
                                           200'000));
    EXPECT_EQ(base.pages2M, 0u);
    EXPECT_EQ(base.numRanges, 0u);
}

TEST(Simulator, PaperInvariantsOnShortRuns)
{
    // mcf, 2M instructions: enough for the shape invariants.
    const auto base = simulate(quickConfig("mcf", core::MmuOrg::Base4K));
    const auto thp = simulate(quickConfig("mcf", core::MmuOrg::Thp));
    const auto rmm = simulate(quickConfig("mcf", core::MmuOrg::Rmm));
    const auto rmmLite =
        simulate(quickConfig("mcf", core::MmuOrg::RmmLite));

    // THP slashes miss cycles vs 4 KB pages.
    EXPECT_LT(thp.missCyclesPerKiloInstr(),
              0.5 * base.missCyclesPerKiloInstr());
    // RMM nearly eliminates page walks.
    EXPECT_LT(rmm.stats.l2Mpki(), 0.05 * base.stats.l2Mpki());
    // RMM_Lite nearly eliminates L1 TLB misses too.
    EXPECT_LT(rmmLite.stats.l1Mpki(), 0.05 * thp.stats.l1Mpki());
    // And it spends much less translation energy than THP.
    EXPECT_LT(rmmLite.energyPerKiloInstr(),
              0.5 * thp.energyPerKiloInstr());
}

TEST(Simulator, TraceReplayMatchesDirectSimulation)
{
    const std::string path =
        ::testing::TempDir() + "eat_sim_trace_test.bin";
    auto cfg = quickConfig("omnetpp", core::MmuOrg::Thp, 400'000);

    const auto direct = simulate(cfg);
    const auto recorded = recordTrace(cfg, path);
    EXPECT_GT(recorded, 0u);
    const auto replayed = simulateFromTrace(cfg, path);
    std::remove(path.c_str());

    // Identical address space + identical operation stream => identical
    // hardware behaviour.
    EXPECT_EQ(replayed.stats.memOps, direct.stats.memOps);
    EXPECT_EQ(replayed.stats.l1Misses, direct.stats.l1Misses);
    EXPECT_EQ(replayed.stats.l2Misses, direct.stats.l2Misses);
    EXPECT_DOUBLE_EQ(replayed.totalEnergy(), direct.totalEnergy());
}

TEST(Simulator, StaticEnergyFieldsPopulated)
{
    const auto r = simulate(quickConfig("astar", core::MmuOrg::TlbLite,
                                        3'000'000));
    EXPECT_GT(r.energy.staticEnergyFull, 0.0);
    EXPECT_GT(r.energy.staticEnergyGated, 0.0);
    EXPECT_LE(r.energy.staticEnergyGated, r.energy.staticEnergyFull);
}

TEST(Simulator, CombinedFullyAssocL1EndToEnd)
{
    auto cfg = quickConfig("astar", core::MmuOrg::TlbLite, 2'500'000);
    cfg.mmu.combinedFullyAssocL1 = true;
    const auto combined = simulate(cfg);
    EXPECT_GT(combined.stats.memOps, 0u);
    EXPECT_TRUE(combined.liteEnabled);
    // The combined fully associative L1 without Lite costs more than
    // the separate set-associative baseline (paper §2.2).
    auto thpCfg = quickConfig("astar", core::MmuOrg::Thp, 2'500'000);
    thpCfg.mmu.combinedFullyAssocL1 = true;
    const auto combinedThp = simulate(thpCfg);
    const auto separateThp =
        simulate(quickConfig("astar", core::MmuOrg::Thp, 2'500'000));
    EXPECT_GT(combinedThp.energyPerKiloInstr(),
              separateThp.energyPerKiloInstr());
}

TEST(Simulator, RejectsEmptyWindow)
{
    auto cfg = quickConfig("astar", core::MmuOrg::Thp);
    cfg.simulateInstructions = 0;
    EXPECT_THROW((void)simulate(cfg), std::logic_error);
}

TEST(BenchOptions, ParsesArguments)
{
    const char *argv[] = {"bench", "--instructions=5000",
                          "--fast-forward=100", "--seed=7", "--csv"};
    const auto opts =
        BenchOptions::parse(5, const_cast<char **>(argv));
    EXPECT_EQ(opts.simulateInstructions, 5000u);
    EXPECT_EQ(opts.fastForwardInstructions, 100u);
    EXPECT_EQ(opts.seed, 7u);
    EXPECT_TRUE(opts.csv);
}

TEST(BenchOptions, QuickPreset)
{
    const char *argv[] = {"bench", "--quick"};
    const auto opts =
        BenchOptions::parse(2, const_cast<char **>(argv));
    EXPECT_EQ(opts.simulateInstructions, 4'000'000u);
}

TEST(BenchOptions, RejectsUnknownFlag)
{
    const char *argv[] = {"bench", "--frobnicate"};
    EXPECT_THROW(BenchOptions::parse(2, const_cast<char **>(argv)),
                 std::runtime_error);
}

TEST(Report, MeanOf)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({2.0, 4.0}), 3.0);
}

TEST(Report, NormalizedTableShape)
{
    std::vector<core::MmuOrg> orgs{core::MmuOrg::Base4K,
                                   core::MmuOrg::Thp};
    BenchOptions opts;
    opts.simulateInstructions = 300'000;
    opts.fastForwardInstructions = 50'000;
    const auto rows = runMatrix(
        {*workloads::findWorkload("povray")}, orgs, opts);
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].byOrg.size(), 2u);
    auto table = normalizedTable(rows, orgs, energyMetric, "energy");
    EXPECT_EQ(table.numRows(), 2u); // one workload + the average row
    // The baseline column is 1.0 by construction.
    EXPECT_NE(table.toString().find("1.000"), std::string::npos);
}

} // namespace
} // namespace eat::sim
