/**
 * @file
 * End-to-end simulator tests: every organization runs every mechanism
 * path, results are reproducible, and the headline invariants of the
 * paper hold on short runs.
 */

#include <gtest/gtest.h>

#include "sim/report.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace eat::sim
{
namespace
{

SimConfig
quickConfig(const std::string &workload, core::MmuOrg org,
            InstrCount instructions = 2'000'000)
{
    SimConfig cfg;
    cfg.workload = *workloads::findWorkload(workload);
    cfg.mmu = core::MmuConfig::make(org);
    cfg.fastForwardInstructions = 100'000;
    cfg.simulateInstructions = instructions;
    return cfg;
}

TEST(Simulator, SmokeAllOrgs)
{
    for (const auto org : core::allOrgs()) {
        const auto r = simulate(quickConfig("omnetpp", org, 500'000));
        EXPECT_EQ(r.org, org);
        EXPECT_EQ(r.workloadName, "omnetpp");
        EXPECT_GE(r.stats.instructions, 500'000u);
        EXPECT_GT(r.stats.memOps, 0u);
        EXPECT_GT(r.totalEnergy(), 0.0);
        EXPECT_GT(r.energyPerKiloInstr(), 0.0);
    }
}

TEST(Simulator, BitIdenticalReruns)
{
    const auto a = simulate(quickConfig("astar", core::MmuOrg::RmmLite));
    const auto b = simulate(quickConfig("astar", core::MmuOrg::RmmLite));
    EXPECT_EQ(a.stats.memOps, b.stats.memOps);
    EXPECT_EQ(a.stats.l1Misses, b.stats.l1Misses);
    EXPECT_EQ(a.stats.l2Misses, b.stats.l2Misses);
    EXPECT_DOUBLE_EQ(a.totalEnergy(), b.totalEnergy());
    EXPECT_EQ(a.lite.wayDisableEvents, b.lite.wayDisableEvents);
}

TEST(Simulator, SeedChangesTheRun)
{
    auto cfg = quickConfig("astar", core::MmuOrg::Thp);
    const auto a = simulate(cfg);
    cfg.seed = 1234;
    const auto b = simulate(cfg);
    EXPECT_NE(a.stats.l1Misses, b.stats.l1Misses);
}

TEST(Simulator, TimelineRecordsIntervals)
{
    auto cfg = quickConfig("mcf", core::MmuOrg::Base4K, 1'000'000);
    cfg.timelineInterval = 100'000;
    const auto r = simulate(cfg);
    EXPECT_GE(r.mpkiTimeline.numSamples(), 9u);
    EXPECT_LE(r.mpkiTimeline.numSamples(), 11u);
    EXPECT_GT(r.mpkiTimeline.mean(), 0.0);
}

TEST(Simulator, OsFactsFollowPolicy)
{
    const auto thp = simulate(quickConfig("mcf", core::MmuOrg::Thp,
                                          200'000));
    EXPECT_GT(thp.pages2M, 0u);
    EXPECT_EQ(thp.numRanges, 0u);

    const auto rmmLite =
        simulate(quickConfig("mcf", core::MmuOrg::RmmLite, 200'000));
    EXPECT_EQ(rmmLite.pages2M, 0u); // RMM_Lite maps 4 KB pages only
    EXPECT_GT(rmmLite.numRanges, 0u);
    EXPECT_DOUBLE_EQ(rmmLite.rangeCoverage, 1.0); // perfect eager paging

    const auto base = simulate(quickConfig("mcf", core::MmuOrg::Base4K,
                                           200'000));
    EXPECT_EQ(base.pages2M, 0u);
    EXPECT_EQ(base.numRanges, 0u);
}

TEST(Simulator, PaperInvariantsOnShortRuns)
{
    // mcf, 2M instructions: enough for the shape invariants.
    const auto base = simulate(quickConfig("mcf", core::MmuOrg::Base4K));
    const auto thp = simulate(quickConfig("mcf", core::MmuOrg::Thp));
    const auto rmm = simulate(quickConfig("mcf", core::MmuOrg::Rmm));
    const auto rmmLite =
        simulate(quickConfig("mcf", core::MmuOrg::RmmLite));

    // THP slashes miss cycles vs 4 KB pages.
    EXPECT_LT(thp.missCyclesPerKiloInstr(),
              0.5 * base.missCyclesPerKiloInstr());
    // RMM nearly eliminates page walks.
    EXPECT_LT(rmm.stats.l2Mpki(), 0.05 * base.stats.l2Mpki());
    // RMM_Lite nearly eliminates L1 TLB misses too.
    EXPECT_LT(rmmLite.stats.l1Mpki(), 0.05 * thp.stats.l1Mpki());
    // And it spends much less translation energy than THP.
    EXPECT_LT(rmmLite.energyPerKiloInstr(),
              0.5 * thp.energyPerKiloInstr());
}

TEST(Simulator, TraceReplayMatchesDirectSimulation)
{
    const std::string path =
        ::testing::TempDir() + "eat_sim_trace_test.bin";
    auto cfg = quickConfig("omnetpp", core::MmuOrg::Thp, 400'000);

    const auto direct = simulate(cfg);
    const auto recorded = recordTrace(cfg, path);
    EXPECT_GT(recorded, 0u);
    const auto replayed = simulateFromTrace(cfg, path);
    std::remove(path.c_str());

    // Identical address space + identical operation stream => identical
    // hardware behaviour.
    EXPECT_EQ(replayed.stats.memOps, direct.stats.memOps);
    EXPECT_EQ(replayed.stats.l1Misses, direct.stats.l1Misses);
    EXPECT_EQ(replayed.stats.l2Misses, direct.stats.l2Misses);
    EXPECT_DOUBLE_EQ(replayed.totalEnergy(), direct.totalEnergy());
}

TEST(Simulator, StaticEnergyFieldsPopulated)
{
    const auto r = simulate(quickConfig("astar", core::MmuOrg::TlbLite,
                                        3'000'000));
    EXPECT_GT(r.energy.staticEnergyFull, 0.0);
    EXPECT_GT(r.energy.staticEnergyGated, 0.0);
    EXPECT_LE(r.energy.staticEnergyGated, r.energy.staticEnergyFull);
}

TEST(Simulator, CombinedFullyAssocL1EndToEnd)
{
    auto cfg = quickConfig("astar", core::MmuOrg::TlbLite, 2'500'000);
    cfg.mmu.combinedFullyAssocL1 = true;
    const auto combined = simulate(cfg);
    EXPECT_GT(combined.stats.memOps, 0u);
    EXPECT_TRUE(combined.liteEnabled);
    // The combined fully associative L1 without Lite costs more than
    // the separate set-associative baseline (paper §2.2).
    auto thpCfg = quickConfig("astar", core::MmuOrg::Thp, 2'500'000);
    thpCfg.mmu.combinedFullyAssocL1 = true;
    const auto combinedThp = simulate(thpCfg);
    const auto separateThp =
        simulate(quickConfig("astar", core::MmuOrg::Thp, 2'500'000));
    EXPECT_GT(combinedThp.energyPerKiloInstr(),
              separateThp.energyPerKiloInstr());
}

TEST(Simulator, RejectsEmptyWindow)
{
    auto cfg = quickConfig("astar", core::MmuOrg::Thp);
    cfg.simulateInstructions = 0;
    EXPECT_THROW((void)simulate(cfg), std::logic_error);
}

TEST(BenchOptions, ParsesArguments)
{
    const char *argv[] = {"bench", "--instructions=5000",
                          "--fast-forward=100", "--seed=7", "--csv"};
    const auto opts =
        BenchOptions::parse(5, const_cast<char **>(argv));
    EXPECT_EQ(opts.simulateInstructions, 5000u);
    EXPECT_EQ(opts.fastForwardInstructions, 100u);
    EXPECT_EQ(opts.seed, 7u);
    EXPECT_TRUE(opts.csv);
}

TEST(BenchOptions, QuickPreset)
{
    const char *argv[] = {"bench", "--quick"};
    const auto opts =
        BenchOptions::parse(2, const_cast<char **>(argv));
    EXPECT_EQ(opts.simulateInstructions, 4'000'000u);
}

TEST(BenchOptions, RejectsUnknownFlag)
{
    const char *argv[] = {"bench", "--frobnicate"};
    EXPECT_THROW(BenchOptions::parse(2, const_cast<char **>(argv)),
                 std::runtime_error);
}

TEST(Report, MeanOf)
{
    EXPECT_DOUBLE_EQ(meanOf({}), 0.0);
    EXPECT_DOUBLE_EQ(meanOf({2.0, 4.0}), 3.0);
}

TEST(Report, NormalizedTableShape)
{
    std::vector<core::MmuOrg> orgs{core::MmuOrg::Base4K,
                                   core::MmuOrg::Thp};
    BenchOptions opts;
    opts.simulateInstructions = 300'000;
    opts.fastForwardInstructions = 50'000;
    const auto rows = runMatrix(
        {*workloads::findWorkload("povray")}, orgs, opts);
    ASSERT_EQ(rows.size(), 1u);
    ASSERT_EQ(rows[0].byOrg.size(), 2u);
    auto table = normalizedTable(rows, orgs, energyMetric, "energy");
    EXPECT_EQ(table.numRows(), 2u); // one workload + the average row
    // The baseline column is 1.0 by construction.
    EXPECT_NE(table.toString().find("1.000"), std::string::npos);
}

} // namespace
} // namespace eat::sim
