/**
 * @file
 * Tests for the self-checking layer: the golden shadow translator, the
 * differential checker (does it actually fire on corrupted state?),
 * fault-injection determinism, configuration validation, and the strict
 * parse helpers.
 */

#include <gtest/gtest.h>

#include "base/parse.hh"
#include "base/status.hh"
#include "check/fault_injector.hh"
#include "check/shadow_checker.hh"
#include "check/shadow_translator.hh"
#include "core/mmu.hh"
#include "sim/simulator.hh"
#include "workloads/suite.hh"

namespace eat::check
{
namespace
{

using vm::PageSize;

// --- Status / Result / parse helpers ---------------------------------

TEST(Status, DefaultIsOkAndErrorCarriesMessage)
{
    const Status ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_TRUE(ok.message().empty());

    const Status err = Status::error("bad thing ", 42);
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.message(), "bad thing 42");
}

TEST(Status, ResultHoldsValueOrStatus)
{
    const Result<int> good(7);
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(good.value(), 7);

    const Result<int> bad(Status::error("nope"));
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().message(), "nope");
}

TEST(Parse, AcceptsPlainDecimals)
{
    EXPECT_EQ(parseU64("0").value(), 0u);
    EXPECT_EQ(parseU64("20000000").value(), 20000000u);
    EXPECT_EQ(parseU64("18446744073709551615").value(), UINT64_MAX);
}

TEST(Parse, RejectsGarbage)
{
    EXPECT_FALSE(parseU64("").ok());
    EXPECT_FALSE(parseU64("abc").ok());
    EXPECT_FALSE(parseU64("12abc").ok());
    EXPECT_FALSE(parseU64("-5").ok());
    EXPECT_FALSE(parseU64("1e6").ok());
    // One past UINT64_MAX must be an overflow error, not a wrap.
    EXPECT_FALSE(parseU64("18446744073709551616").ok());
}

TEST(Parse, ParsesDoubles)
{
    EXPECT_DOUBLE_EQ(parseF64("1e-4").value(), 1e-4);
    EXPECT_DOUBLE_EQ(parseF64("0.5").value(), 0.5);
    EXPECT_FALSE(parseF64("").ok());
    EXPECT_FALSE(parseF64("0.5x").ok());
}

TEST(CheckLevelParse, RoundTrips)
{
    EXPECT_EQ(parseCheckLevel("off").value(), CheckLevel::Off);
    EXPECT_EQ(parseCheckLevel("paddr").value(), CheckLevel::Paddr);
    EXPECT_EQ(parseCheckLevel("full").value(), CheckLevel::Full);
    EXPECT_FALSE(parseCheckLevel("sometimes").ok());
}

// --- fault-spec grammar ----------------------------------------------

TEST(FaultSpecParse, ParsesFullGrammar)
{
    const auto r =
        parseFaultSpecs("ppn-flip@l1-4k:1e-4,drop-inv:0.001,tag-flip");
    ASSERT_TRUE(r.ok());
    const auto &specs = r.value();
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].kind, FaultKind::PpnFlip);
    EXPECT_EQ(specs[0].target, FaultTarget::L1Tlb4K);
    EXPECT_DOUBLE_EQ(specs[0].probability, 1e-4);
    EXPECT_EQ(specs[1].kind, FaultKind::DropInvalidation);
    EXPECT_EQ(specs[1].target, FaultTarget::Any);
    EXPECT_DOUBLE_EQ(specs[1].probability, 0.001);
    EXPECT_EQ(specs[2].kind, FaultKind::TagFlip);
    EXPECT_DOUBLE_EQ(specs[2].probability, 1e-4); // default
}

TEST(FaultSpecParse, RejectsMalformedSpecs)
{
    EXPECT_FALSE(parseFaultSpecs("").ok());
    EXPECT_FALSE(parseFaultSpecs("melt-down").ok());
    EXPECT_FALSE(parseFaultSpecs("ppn-flip@l7").ok());
    EXPECT_FALSE(parseFaultSpecs("ppn-flip:maybe").ok());
    EXPECT_FALSE(parseFaultSpecs("ppn-flip:2.0").ok());
    // Structural faults have no meaning on range TLBs.
    EXPECT_FALSE(parseFaultSpecs("drop-inv@l1-range").ok());
}

// --- golden shadow translator ----------------------------------------

TEST(ShadowTranslatorTest, SnapshotsPagesAndRanges)
{
    vm::PageTable pt;
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(4_MiB, 16_MiB, PageSize::Size2M);
    vm::RangeTable rt;
    rt.insert({0x1000, 0x3000, 0x200000});

    ShadowTranslator golden(pt, &rt);
    EXPECT_EQ(golden.pageCount(), 2u);
    EXPECT_EQ(golden.rangeCount(), 1u);

    const auto p4k = golden.translatePage(0x1234);
    ASSERT_TRUE(p4k.has_value());
    EXPECT_EQ(p4k->paddr(0x1234), 0x200234u);
    EXPECT_EQ(p4k->size, PageSize::Size4K);

    const auto p2m = golden.translatePage(4_MiB + 0x567);
    ASSERT_TRUE(p2m.has_value());
    EXPECT_EQ(p2m->paddr(4_MiB + 0x567), 16_MiB + 0x567);
    EXPECT_EQ(p2m->size, PageSize::Size2M);

    EXPECT_FALSE(golden.translatePage(64_MiB).has_value());

    const auto r = golden.translateRange(0x2abc);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->paddr(0x2abc), 0x201abcu);
    EXPECT_FALSE(golden.translateRange(0x3000).has_value());
}

TEST(ShadowTranslatorTest, RebuildSeesNewMappings)
{
    vm::PageTable pt;
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    ShadowTranslator golden(pt, nullptr);
    EXPECT_EQ(golden.pageCount(), 1u);

    pt.map(0x2000, 0x201000, PageSize::Size4K);
    EXPECT_FALSE(golden.translatePage(0x2000).has_value()); // stale
    golden.rebuild();
    ASSERT_TRUE(golden.translatePage(0x2000).has_value());
    EXPECT_EQ(golden.translatePage(0x2000)->paddr(0x2000), 0x201000u);
}

// --- the checker fires on corrupted TLB state ------------------------

class CheckerTest : public ::testing::Test
{
  protected:
    vm::PageTable pt;
    vm::RangeTable rt;
};

TEST_F(CheckerTest, CleanMmuProducesNoMismatches)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    pt.map(0x2000, 0x201000, PageSize::Size4K);
    core::Mmu mmu(core::MmuConfig::make(core::MmuOrg::Base4K), pt,
                  nullptr);
    ShadowChecker checker(CheckLevel::Full, pt, nullptr);
    mmu.setChecker(&checker);

    for (int i = 0; i < 10; ++i) {
        mmu.access(0x1000 + 0x100 * static_cast<Addr>(i));
        mmu.access(0x2000 + 0x100 * static_cast<Addr>(i));
    }
    EXPECT_EQ(checker.stats().translationChecks, 20u);
    EXPECT_EQ(checker.stats().mismatches(), 0u);
    EXPECT_TRUE(checker.verdict().ok());
    EXPECT_TRUE(checker.firstMismatch().empty());
}

TEST_F(CheckerTest, CatchesCorruptedPpnInL1)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    core::Mmu mmu(core::MmuConfig::make(core::MmuOrg::Base4K), pt,
                  nullptr);
    ShadowChecker checker(CheckLevel::Full, pt, nullptr);
    mmu.setChecker(&checker);

    mmu.access(0x1234); // walk + fill; clean
    ASSERT_EQ(checker.stats().mismatches(), 0u);

    // Flip a PPN bit of the only valid L1 entry behind the MMU's back.
    ASSERT_TRUE(mmu.l1Tlb4K().corruptRandomEntry(0, /*flipTag=*/false));

    mmu.access(0x1678); // hits the corrupted entry
    EXPECT_EQ(checker.stats().paddrMismatches, 1u);
    EXPECT_FALSE(checker.verdict().ok());
    EXPECT_FALSE(checker.firstMismatch().empty());
}

TEST_F(CheckerTest, CatchesDroppedInvalidationViaWayMaskAudit)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    core::Mmu mmu(core::MmuConfig::make(core::MmuOrg::Base4K), pt,
                  nullptr);
    mmu.access(0x1234); // one valid entry

    auto &tlb = mmu.l1Tlb4K();
    tlb.armDropInvalidation();
    tlb.setActiveWays(1); // victims should be invalidated — but aren't

    ShadowChecker checker(CheckLevel::Full, pt, nullptr);
    if (tlb.validInDisabledWays() > 0) {
        checker.auditWayMask(tlb);
        EXPECT_EQ(checker.stats().wayMaskViolations, 1u);
        EXPECT_FALSE(checker.verdict().ok());
    } else {
        // The entry happened to live in way 0 and survived the shrink;
        // the audit then rightly stays quiet.
        checker.auditWayMask(tlb);
        EXPECT_EQ(checker.stats().wayMaskViolations, 0u);
    }
}

TEST_F(CheckerTest, CatchesSpuriousWayEnable)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    core::Mmu mmu(core::MmuConfig::make(core::MmuOrg::Base4K), pt,
                  nullptr);
    auto &tlb = mmu.l1Tlb4K();
    tlb.forceActiveWays(3); // not a power of two

    ShadowChecker checker(CheckLevel::Full, pt, nullptr);
    checker.auditWayMask(tlb);
    EXPECT_EQ(checker.stats().wayMaskViolations, 1u);
}

TEST_F(CheckerTest, PaddrLevelSkipsWayMaskAudits)
{
    pt.map(0x1000, 0x200000, PageSize::Size4K);
    core::Mmu mmu(core::MmuConfig::make(core::MmuOrg::Base4K), pt,
                  nullptr);
    auto &tlb = mmu.l1Tlb4K();
    tlb.forceActiveWays(3);

    ShadowChecker checker(CheckLevel::Paddr, pt, nullptr);
    checker.auditWayMask(tlb);
    EXPECT_EQ(checker.stats().wayMaskAudits, 0u);
    EXPECT_EQ(checker.stats().mismatches(), 0u);
}

// --- end-to-end: injection through simulate() ------------------------

sim::SimConfig
injectConfig(const std::string &spec)
{
    sim::SimConfig cfg;
    cfg.workload = *workloads::findWorkload("mcf");
    cfg.mmu = core::MmuConfig::make(core::MmuOrg::Thp);
    cfg.fastForwardInstructions = 50'000;
    cfg.simulateInstructions = 500'000;
    cfg.checkLevel = CheckLevel::Full;
    cfg.faultSpec = spec;
    return cfg;
}

TEST(FaultInjection, InjectedFaultsAreDetected)
{
    const auto r = sim::simulate(injectConfig("ppn-flip@l1-4k:1e-3"));
    EXPECT_GT(r.inject.ppnFlips, 0u);
    EXPECT_GT(r.check.mismatches(), 0u);
    EXPECT_FALSE(r.firstMismatch.empty());
}

TEST(FaultInjection, DeterministicUnderFixedSeed)
{
    const auto a = sim::simulate(
        injectConfig("tag-flip:1e-4,ppn-flip:1e-4,drop-inv:1e-4"));
    const auto b = sim::simulate(
        injectConfig("tag-flip:1e-4,ppn-flip:1e-4,drop-inv:1e-4"));
    EXPECT_EQ(a.inject.tagFlips, b.inject.tagFlips);
    EXPECT_EQ(a.inject.ppnFlips, b.inject.ppnFlips);
    EXPECT_EQ(a.inject.droppedInvalidations, b.inject.droppedInvalidations);
    EXPECT_EQ(a.check.mismatches(), b.check.mismatches());
    EXPECT_EQ(a.firstMismatch, b.firstMismatch);
    EXPECT_GT(a.inject.injected(), 0u);
}

TEST(FaultInjection, SeedChangesTheFaultStream)
{
    auto cfg = injectConfig("ppn-flip:1e-3");
    const auto a = sim::simulate(cfg);
    cfg.seed = 777;
    const auto b = sim::simulate(cfg);
    // Different seed, different opportunity draws.
    EXPECT_NE(a.check.mismatches(), b.check.mismatches());
}

TEST(FaultInjection, CleanRunsStayClean)
{
    auto cfg = injectConfig("");
    const auto r = sim::simulate(cfg);
    EXPECT_EQ(r.inject.injected(), 0u);
    EXPECT_EQ(r.check.mismatches(), 0u);
    EXPECT_GT(r.check.translationChecks, 0u);
}

// --- MmuConfig::validate ---------------------------------------------

TEST(ConfigValidate, CanonicalOrgsAreValid)
{
    for (const auto org : core::allOrgs())
        EXPECT_TRUE(core::MmuConfig::make(org).validate().ok())
            << core::orgName(org);
}

TEST(ConfigValidate, RejectsBadGeometry)
{
    auto cfg = core::MmuConfig::make(core::MmuOrg::Thp);
    cfg.l1Tlb4K.ways = 3; // non-power-of-two associativity
    EXPECT_FALSE(cfg.validate().ok());

    cfg = core::MmuConfig::make(core::MmuOrg::Thp);
    cfg.l1Tlb4K.entries = 0;
    EXPECT_FALSE(cfg.validate().ok());

    cfg = core::MmuConfig::make(core::MmuOrg::Thp);
    cfg.l2Tlb = {100, 8}; // entries not divisible into sets
    EXPECT_FALSE(cfg.validate().ok());

    cfg = core::MmuConfig::make(core::MmuOrg::Thp);
    cfg.l1Tlb4K = {96, 4}; // 24 sets: not a power of two
    EXPECT_FALSE(cfg.validate().ok());
}

TEST(ConfigValidate, RejectsIncoherentFeatureFlags)
{
    auto cfg = core::MmuConfig::make(core::MmuOrg::TlbPP);
    cfg.combinedFullyAssocL1 = true; // mixed and combined are exclusive
    EXPECT_FALSE(cfg.validate().ok());

    cfg = core::MmuConfig::make(core::MmuOrg::TlbPP);
    cfg.liteEnabled = true; // no Lite on the mixed organization
    EXPECT_FALSE(cfg.validate().ok());

    cfg = core::MmuConfig::make(core::MmuOrg::RmmLite);
    cfg.hasL2Range = false; // L1-range requires L2-range backing
    EXPECT_FALSE(cfg.validate().ok());
}

TEST(ConfigValidate, RejectsOutOfRangeKnobs)
{
    auto cfg = core::MmuConfig::make(core::MmuOrg::Thp);
    cfg.walkL1CacheHitRatio = 1.5;
    EXPECT_FALSE(cfg.validate().ok());

    cfg = core::MmuConfig::make(core::MmuOrg::Thp);
    cfg.clockGhz = 0.0;
    EXPECT_FALSE(cfg.validate().ok());

    cfg = core::MmuConfig::make(core::MmuOrg::TlbLite);
    cfg.lite.fullActivationProbability = -0.1;
    EXPECT_FALSE(cfg.validate().ok());
}

TEST(ConfigValidate, MmuConstructorRefusesInvalidConfig)
{
    vm::PageTable pt;
    auto cfg = core::MmuConfig::make(core::MmuOrg::Thp);
    cfg.l1Tlb4K.ways = 3;
    EXPECT_THROW(core::Mmu(cfg, pt, nullptr), std::runtime_error);
}

} // namespace
} // namespace eat::check
