/**
 * @file
 * Tests for binary trace recording and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "workloads/trace.hh"

namespace eat::workloads
{
namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "eat_trace_test.bin";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(TraceTest, RoundTripsOperations)
{
    {
        TraceWriter w(path_);
        w.write({0x1000, 3});
        w.write({0xfeedbeefcafe, 1});
        w.write({0x7fffffffffff, 100000});
        EXPECT_EQ(w.recordsWritten(), 3u);
    }
    TraceReader r(path_);
    EXPECT_EQ(r.totalRecords(), 3u);
    auto a = r.next();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->vaddr, 0x1000u);
    EXPECT_EQ(a->instrGap, 3u);
    auto b = r.next();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->vaddr, 0xfeedbeefcafeull);
    auto c = r.next();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->instrGap, 100000u);
    EXPECT_FALSE(r.next().has_value());
    EXPECT_EQ(r.recordsRead(), 3u);
}

TEST_F(TraceTest, EmptyTraceIsValid)
{
    {
        TraceWriter w(path_);
    }
    TraceReader r(path_);
    EXPECT_EQ(r.totalRecords(), 0u);
    EXPECT_FALSE(r.next().has_value());
}

TEST_F(TraceTest, ExplicitCloseIsIdempotent)
{
    TraceWriter w(path_);
    w.write({1, 1});
    EXPECT_TRUE(w.close().ok());
    EXPECT_TRUE(w.close().ok());
    EXPECT_THROW(w.write({2, 1}), std::logic_error);
    TraceReader r(path_);
    EXPECT_EQ(r.totalRecords(), 1u);
}

TEST_F(TraceTest, CloseReportsWriteFailure)
{
    TraceWriter w("/dev/full");
    w.write({1, 1});
    const auto s = w.close();
    EXPECT_FALSE(s.ok());
    EXPECT_NE(s.message().find("write failure"), std::string::npos);
}

TEST_F(TraceTest, RejectsMissingFile)
{
    EXPECT_THROW(TraceReader("/nonexistent/trace.bin"),
                 std::runtime_error);
}

TEST_F(TraceTest, RejectsWrongMagic)
{
    {
        std::ofstream os(path_, std::ios::binary);
        os << "NOTATRACE-AT-ALL";
    }
    EXPECT_THROW(TraceReader r(path_), std::runtime_error);
}

TEST_F(TraceTest, RejectsShortHeader)
{
    {
        std::ofstream os(path_, std::ios::binary);
        os << "EATT"; // 4 of the 16 header bytes
    }
    EXPECT_THROW(TraceReader r(path_), std::runtime_error);
}

TEST_F(TraceTest, RejectsUnsupportedVersion)
{
    {
        TraceWriter w(path_);
        w.write({0x1000, 1});
    }
    // Bump the on-disk version field (bytes 8..11, little endian).
    {
        std::fstream f(path_, std::ios::binary | std::ios::in |
                                  std::ios::out);
        f.seekp(8);
        const char v2[4] = {2, 0, 0, 0};
        f.write(v2, sizeof(v2));
    }
    try {
        TraceReader r(path_);
        FAIL() << "expected a version error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos);
    }
}

TEST_F(TraceTest, DetectsTruncatedFile)
{
    {
        TraceWriter w(path_);
        for (std::uint64_t i = 0; i < 100; ++i)
            w.write({i << 12, 1});
    }
    // Chop the last record in half: the header still promises 100.
    {
        std::ifstream in(path_, std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        bytes.resize(bytes.size() - 6);
        std::ofstream out(path_, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    try {
        TraceReader r(path_);
        FAIL() << "expected a truncation error";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("truncated"),
                  std::string::npos);
    }
}

TEST_F(TraceTest, DetectsTrailingGarbage)
{
    {
        TraceWriter w(path_);
        w.write({0x1000, 1});
    }
    {
        std::ofstream os(path_, std::ios::binary | std::ios::app);
        os << "extra";
    }
    EXPECT_THROW(TraceReader r(path_), std::runtime_error);
}

TEST_F(TraceTest, RoundTripsAtExactBlockBoundaries)
{
    // The buffered reader/writer move records in ~64 KiB blocks of
    // 5461 records; exercise one record below, at, and above the
    // boundary so refill/flush edges cannot regress silently.
    constexpr std::uint64_t kBlock = (64 * 1024) / 12;
    for (const std::uint64_t n : {kBlock - 1, kBlock, kBlock + 1}) {
        {
            TraceWriter w(path_);
            for (std::uint64_t i = 0; i < n; ++i)
                w.write({i << 12, 1});
            ASSERT_TRUE(w.close().ok());
        }
        TraceReader r(path_);
        ASSERT_EQ(r.totalRecords(), n);
        for (std::uint64_t i = 0; i < n; ++i) {
            auto op = r.next();
            ASSERT_TRUE(op.has_value());
            ASSERT_EQ(op->vaddr, i << 12);
        }
        EXPECT_FALSE(r.next().has_value());
    }
}

TEST_F(TraceTest, LargeTraceRoundTrip)
{
    constexpr std::uint64_t kN = 50000;
    {
        TraceWriter w(path_);
        for (std::uint64_t i = 0; i < kN; ++i)
            w.write({i << 12, (i % 7) + 1});
    }
    TraceReader r(path_);
    EXPECT_EQ(r.totalRecords(), kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
        auto op = r.next();
        ASSERT_TRUE(op.has_value());
        ASSERT_EQ(op->vaddr, i << 12);
        ASSERT_EQ(op->instrGap, (i % 7) + 1);
    }
    EXPECT_FALSE(r.next().has_value());
}

} // namespace
} // namespace eat::workloads
