/**
 * @file
 * Tests for binary trace recording and replay.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "workloads/trace.hh"

namespace eat::workloads
{
namespace
{

class TraceTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = ::testing::TempDir() + "eat_trace_test.bin";
    }

    void
    TearDown() override
    {
        std::remove(path_.c_str());
    }

    std::string path_;
};

TEST_F(TraceTest, RoundTripsOperations)
{
    {
        TraceWriter w(path_);
        w.write({0x1000, 3});
        w.write({0xfeedbeefcafe, 1});
        w.write({0x7fffffffffff, 100000});
        EXPECT_EQ(w.recordsWritten(), 3u);
    }
    TraceReader r(path_);
    EXPECT_EQ(r.totalRecords(), 3u);
    auto a = r.next();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->vaddr, 0x1000u);
    EXPECT_EQ(a->instrGap, 3u);
    auto b = r.next();
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->vaddr, 0xfeedbeefcafeull);
    auto c = r.next();
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->instrGap, 100000u);
    EXPECT_FALSE(r.next().has_value());
    EXPECT_EQ(r.recordsRead(), 3u);
}

TEST_F(TraceTest, EmptyTraceIsValid)
{
    {
        TraceWriter w(path_);
    }
    TraceReader r(path_);
    EXPECT_EQ(r.totalRecords(), 0u);
    EXPECT_FALSE(r.next().has_value());
}

TEST_F(TraceTest, ExplicitCloseIsIdempotent)
{
    TraceWriter w(path_);
    w.write({1, 1});
    w.close();
    w.close();
    EXPECT_THROW(w.write({2, 1}), std::logic_error);
    TraceReader r(path_);
    EXPECT_EQ(r.totalRecords(), 1u);
}

TEST_F(TraceTest, RejectsMissingFile)
{
    EXPECT_THROW(TraceReader("/nonexistent/trace.bin"),
                 std::runtime_error);
}

TEST_F(TraceTest, RejectsWrongMagic)
{
    {
        std::ofstream os(path_, std::ios::binary);
        os << "NOTATRACE-AT-ALL";
    }
    EXPECT_THROW(TraceReader r(path_), std::runtime_error);
}

TEST_F(TraceTest, LargeTraceRoundTrip)
{
    constexpr std::uint64_t kN = 50000;
    {
        TraceWriter w(path_);
        for (std::uint64_t i = 0; i < kN; ++i)
            w.write({i << 12, (i % 7) + 1});
    }
    TraceReader r(path_);
    EXPECT_EQ(r.totalRecords(), kN);
    for (std::uint64_t i = 0; i < kN; ++i) {
        auto op = r.next();
        ASSERT_TRUE(op.has_value());
        ASSERT_EQ(op->vaddr, i << 12);
        ASSERT_EQ(op->instrGap, (i % 7) + 1);
    }
    EXPECT_FALSE(r.next().has_value());
}

} // namespace
} // namespace eat::workloads
